"""Concurrency hammer for the fleet-shared model cache.

16 threads run mixed acquire/release/get/clear schedules (seeded, so every
run replays the same per-thread request sequence even though the OS
interleaving differs) against one :class:`repro.serve.SharedModelCache`.
The invariants under test are exactly the ones a lost update would break:

- every request is accounted once: ``hits + downloads == requests`` on the
  aggregate stats, and the per-session stats sum to the aggregate;
- the fetch function runs exactly ``downloads`` times (single-flight:
  concurrent misses on one label trigger one fetch);
- pinned entries are never evicted, no matter the capacity pressure;
- a failed fetch is charged to exactly one caller and never caches.

The same file regression-tests the single-owner
:class:`repro.core.cache.ModelCache` counter accounting, whose bare
``failed_fetches += 1`` used to lose updates under thread contention.
"""

import random
import threading

import pytest

from repro.core.cache import ModelCache
from repro.serve import SharedModelCache

N_THREADS = 16


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(t):
        try:
            barrier.wait()
            target(t)
        except BaseException as exc:   # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(t,))
               for t in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestSharedCacheHammer:
    def test_mixed_schedule_accounting_is_exact(self):
        fetch_log = []
        log_lock = threading.Lock()

        def fetch(label):
            with log_lock:
                fetch_log.append(label)
            return f"model-{label}"

        cache = SharedModelCache(capacity=4)
        sessions = [cache.session(fetch) for _ in range(N_THREADS)]
        per_thread = 200
        schedules = [
            [random.Random(1000 + t).randrange(12) for _ in range(per_thread)]
            for t in range(N_THREADS)
        ]

        def worker(t):
            session = sessions[t]
            for i, label in enumerate(schedules[t]):
                if i % 3 == 0:
                    model = session.acquire(label)
                    assert model == f"model-{label}"
                    session.release(label)
                else:
                    assert session.get(label) == f"model-{label}"

        _run_threads(N_THREADS, worker)

        agg = cache.stats
        requests = N_THREADS * per_thread
        assert agg.hits + agg.downloads == requests
        assert agg.failed_fetches == 0
        assert agg.downloads == len(fetch_log)
        assert sorted(agg.downloaded_labels) == sorted(fetch_log)
        # Per-session stats partition the aggregate exactly.
        assert sum(s.stats.hits for s in sessions) == agg.hits
        assert sum(s.stats.downloads for s in sessions) == agg.downloads
        assert sum(s.stats.requests for s in sessions) == requests
        assert len(cache) <= 4

    def test_single_flight_concurrent_misses_fetch_once(self):
        started = threading.Barrier(N_THREADS)
        release_fetch = threading.Event()
        calls = []

        def fetch(label):
            calls.append(label)
            release_fetch.wait(5.0)
            return "m"

        cache = SharedModelCache(fetch=fetch)

        def worker(t):
            started.wait()
            if t == 0:
                # Give every other thread a chance to pile onto the label
                # before the leader's fetch completes.
                release_fetch.set()
            assert cache.get(7) == "m"

        _run_threads(N_THREADS, worker)
        assert calls == [7]
        assert cache.stats.downloads == 1
        assert cache.stats.hits == N_THREADS - 1

    def test_pinned_entries_survive_capacity_pressure(self):
        cache = SharedModelCache(fetch=lambda label: label * 10, capacity=1)
        assert cache.acquire(0) == 0        # pinned by this test

        def worker(t):
            for label in range(1, 6):
                assert cache.get(label) == label * 10
                # The pinned label must still be resident mid-pressure.
                assert 0 in cache

        _run_threads(N_THREADS, worker)
        assert 0 in cache
        assert cache.refcount(0) == 1
        assert cache.peak_entries >= 2      # pinned overflow happened
        cache.release(0)
        assert cache.refcount(0) == 0
        # Once unpinned, ordinary pressure may finally evict it.
        cache.get(99)
        assert len(cache) == 1

    def test_failed_fetch_charges_one_caller_and_wakes_waiters(self):
        lock = threading.Lock()
        remaining_failures = [3]

        def fetch(label):
            with lock:
                if remaining_failures[0] > 0:
                    remaining_failures[0] -= 1
                    raise ConnectionError("injected")
            return "m"

        cache = SharedModelCache(fetch=fetch)
        outcomes = []

        def worker(t):
            try:
                model = cache.get(5)
            except ConnectionError:
                outcomes.append("failed")
            else:
                assert model == "m"
                outcomes.append("ok")

        _run_threads(N_THREADS, worker)
        # Each failed fetch propagates to exactly one caller; everyone
        # else retries until the fetch lands, then hits.
        assert outcomes.count("failed") == 3
        assert outcomes.count("ok") == N_THREADS - 3
        assert cache.stats.failed_fetches == 3
        assert cache.stats.downloads == 1
        assert cache.stats.hits == N_THREADS - 4
        assert cache.stats.hits + cache.stats.downloads \
            + cache.stats.failed_fetches == N_THREADS

    def test_release_of_unpinned_entry_raises(self):
        cache = SharedModelCache(fetch=lambda label: label)
        cache.get(1)                        # acquire+release, refcount back to 0
        with pytest.raises(ValueError, match="unpinned"):
            cache.release(1)
        with pytest.raises(ValueError, match="unpinned"):
            cache.release(42)               # never resident

    def test_clear_keeps_pinned_entries(self):
        cache = SharedModelCache(fetch=lambda label: label)
        cache.acquire(1)
        cache.get(2)
        cache.clear()
        assert 1 in cache and 2 not in cache
        cache.release(1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SharedModelCache(capacity=0)
        with pytest.raises(ValueError, match="fetch"):
            SharedModelCache().get(0)


class TestModelCacheAccountingUnderThreads:
    """The single-owner cache's counters must not lose updates either."""

    def test_failed_fetch_counter_is_exact(self):
        def fetch(label):
            raise ConnectionError("always fails")

        cache = ModelCache(fetch=fetch)
        per_thread = 300

        def worker(t):
            for _ in range(per_thread):
                with pytest.raises(ConnectionError):
                    cache.get(0)

        _run_threads(N_THREADS, worker)
        assert cache.stats.failed_fetches == N_THREADS * per_thread
        assert cache.stats.downloads == 0
        assert cache.stats.hits == 0

    def test_hit_and_download_counters_sum_to_requests(self):
        cache = ModelCache(fetch=lambda label: label)
        per_thread = 300

        def worker(t):
            rng = random.Random(2000 + t)
            for _ in range(per_thread):
                cache.get(rng.randrange(8))

        _run_threads(N_THREADS, worker)
        stats = cache.stats
        assert stats.hits + stats.downloads == N_THREADS * per_thread
        # Without single-flight, concurrent same-label misses may each
        # download — but every download must be accounted.
        assert stats.downloads == len(stats.downloaded_labels)
        assert stats.downloads >= 8
