"""Fleet simulator: admission control, arrival schedules, and end-to-end
multi-session runs over the shared test package.

The integration tests assert the serving-layer value propositions
directly: cross-session cache amortization (fleet hit rate beats a solo
session, aggregate model bytes stay below N× solo), per-session span
attribution in the shared trace, and bit-identical frames when SR batches
across sessions.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.client import DcsrClient, FastPathConfig
from repro.serve import (
    BatchingInferenceEngine,
    FleetConfig,
    FleetSimulator,
    arrival_times,
)


def _stub_package(n_frames=80, fps=10.0, n_segments=4):
    """Just enough package for sim-time admission math (no media)."""
    per = n_frames // n_segments
    segments = [SimpleNamespace(n_frames=per) for _ in range(n_segments)]
    return SimpleNamespace(encoded=SimpleNamespace(segments=segments,
                                                   fps=fps))


class TestArrivalSchedules:
    def test_all_arrive_at_zero(self):
        assert arrival_times(FleetConfig(sessions=3)) == [0.0, 0.0, 0.0]

    def test_uniform_spacing(self):
        config = FleetConfig(sessions=3, arrival="uniform:2.5")
        assert arrival_times(config) == [0.0, 2.5, 5.0]

    def test_poisson_starts_at_zero_and_increases(self):
        config = FleetConfig(sessions=8, arrival="poisson:3.0", seed=1)
        times = arrival_times(config)
        assert times[0] == 0.0
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    @pytest.mark.parametrize("spec", [
        "poisson", "poisson:0", "poisson:-1", "poisson:x",
        "uniform:-1", "uniform:y", "burst:3",
    ])
    def test_bad_specs_are_rejected_eagerly(self, spec):
        with pytest.raises(ValueError):
            FleetConfig(sessions=2, arrival=spec)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sessions"):
            FleetConfig(sessions=0)
        with pytest.raises(ValueError, match="admission"):
            FleetConfig(admission="drop")
        with pytest.raises(ValueError, match="max_sessions"):
            FleetConfig(max_sessions=0)
        with pytest.raises(ValueError, match="sr_demand_factor"):
            FleetConfig(sr_demand_factor=1.5)
        with pytest.raises(ValueError, match="sr_demand_factor"):
            FleetConfig(sr_demand_factor=-0.1)
        with pytest.raises(TypeError, match="fast_path"):
            FleetConfig(fast_path="int8")


class TestAdmissionControl:
    def test_unlimited_admits_everyone_at_arrival(self):
        sim = FleetSimulator(_stub_package(), FleetConfig(sessions=3))
        shells = sim.admit([0.0, 1.0, 2.0])
        assert [s.status for s in shells] == ["completed"] * 3
        assert [s.start_s for s in shells] == [0.0, 1.0, 2.0]

    def test_queue_policy_delays_past_capacity(self):
        # Each session occupies a slot for 80 frames / 10 fps = 8 s.
        sim = FleetSimulator(
            _stub_package(),
            FleetConfig(sessions=4, max_sessions=2, admission="queue"))
        shells = sim.admit([0.0, 0.0, 0.0, 0.0])
        assert [s.status for s in shells] == ["completed"] * 4
        assert sorted(s.start_s for s in shells) == [0.0, 0.0, 8.0, 8.0]
        assert sum(s.queue_wait_s for s in shells) == 16.0

    def test_queue_policy_uses_freed_slots(self):
        sim = FleetSimulator(
            _stub_package(),
            FleetConfig(sessions=3, max_sessions=1, admission="queue"))
        shells = sim.admit([0.0, 1.0, 20.0])
        # Session 1 waits for session 0's slot (free at t=8); session 2
        # arrives after everything drained and starts immediately.
        assert [s.start_s for s in shells] == [0.0, 8.0, 20.0]

    def test_reject_policy_turns_arrivals_away(self):
        sim = FleetSimulator(
            _stub_package(),
            FleetConfig(sessions=4, max_sessions=2, admission="reject"))
        shells = sim.admit([0.0, 0.0, 1.0, 9.0])
        assert [s.status for s in shells] == [
            "completed", "completed", "rejected", "completed"]
        # The t=9 arrival lands after the first two sessions ended (t=8).
        assert shells[3].start_s == 9.0


class TestFleetIntegration:
    def test_fleet_amortizes_model_downloads(self, package):
        solo = DcsrClient(package).play()
        fleet = FleetSimulator(
            package, FleetConfig(sessions=4)).run()
        t = fleet.telemetry
        assert t.completed == 4
        assert t.cache_hit_rate > solo.cache_stats.hit_rate
        assert t.total_model_bytes < 4 * solo.model_bytes
        # Every label is fetched exactly once fleet-wide (single-flight,
        # unbounded cache), so model bytes equal one session's uniques.
        assert t.total_model_bytes == solo.model_bytes
        assert t.total_video_bytes == 4 * solo.video_bytes
        # Frames are unaffected by sharing the cache.
        for shell in fleet.completed():
            assert len(shell.result.frames) == len(solo.frames)
            for ours, theirs in zip(shell.result.frames, solo.frames):
                assert np.array_equal(ours, theirs)

    def test_play_spans_are_tagged_per_session(self, package):
        fleet = FleetSimulator(package, FleetConfig(sessions=2)).run()
        plays = fleet.obs.tracer.root.find("play")
        assert sorted(span.attrs["session"] for span in plays) == [0, 1]

    def test_rejected_sessions_produce_no_playback(self, package):
        fleet = FleetSimulator(
            package,
            FleetConfig(sessions=3, max_sessions=1,
                        admission="reject")).run()
        statuses = [s.status for s in fleet.sessions]
        assert statuses == ["completed", "rejected", "rejected"]
        assert fleet.telemetry.rejected == 2
        assert all(s.result is None for s in fleet.sessions
                   if s.status == "rejected")
        assert fleet.obs.metrics.counter(
            "dcsr_fleet_rejected_total").value() == 2

    @pytest.mark.tier2
    def test_batched_sr_is_bitwise_equal_to_per_session_engine(self, package):
        engine_solo = DcsrClient(
            package, fast_path=FastPathConfig(calibrate=False)).play()
        fleet = FleetSimulator(
            package,
            FleetConfig(sessions=3, batching=True, max_batch=4,
                        max_wait_s=0.01)).run()
        assert fleet.telemetry.n_batches > 0
        for shell in fleet.completed():
            for ours, theirs in zip(shell.result.frames, engine_solo.frames):
                assert np.array_equal(ours, theirs)
        # Per-session SR accounting still adds up: every session performed
        # its own share of inferences even when frames rode shared batches.
        for shell in fleet.completed():
            assert shell.result.sr_inferences == engine_solo.sr_inferences

    @pytest.mark.tier2
    def test_fleet_under_contention_still_completes(self, package):
        fleet = FleetSimulator(
            package,
            FleetConfig(sessions=6, arrival="poisson:2.0",
                        bandwidth_bps=1e6, latency_s=0.02, fail_rate=0.2,
                        retries=3, fallback=True, cache_capacity=1,
                        max_sessions=4, admission="queue", seed=3)).run()
        t = fleet.telemetry
        assert t.completed + t.rejected == 6
        assert t.completed >= 4
        for shell in fleet.completed():
            assert len(shell.result.frames) == sum(
                seg.n_frames for seg in package.encoded.segments)
        # The bounded shared cache stayed within its limit.
        assert len(fleet.obs.metrics.metrics()) > 0
        assert t.stall_cdf[-1][1] == 1.0


class TestFleetSrDemand:
    def test_trace_mode_models_sr_demand_per_i_frame(self, package):
        """Trace sessions skip SR compute but account its nominal demand:
        one forward per I-frame at the package's frame geometry."""
        fleet = FleetSimulator(
            package, FleetConfig(sessions=3, mode="trace")).run()
        t = fleet.telemetry
        assert t.total_sr_flops > 0
        n_i = sum(sum(1 for f in seg.frames if f.ftype == "I")
                  for seg in package.encoded.segments)
        per_session = t.total_sr_flops / 3
        # Demand scales with I-frame count and frame area; exact FLOPs
        # come from the engine's own accounting, asserted via scaling
        # below rather than re-deriving the constant here.
        assert n_i > 0
        assert per_session > 0
        assert any("sr demand" in str(row) for row in t.summary_lines())

    def test_trace_demand_survives_save_load(self, package, tmp_path):
        """The regression that motivated persisting frame_info: a fleet
        over a from-disk package (the `cli serve` path) must report the
        same SR demand as the in-memory package — and even a legacy
        package without frame metadata re-derives I-frame counts from
        the GOP plan instead of silently reporting zero."""
        import json

        from repro.core import load_package, save_package

        in_memory = FleetSimulator(
            package, FleetConfig(sessions=2, mode="trace")).run()
        root = save_package(package, tmp_path / "pkg")
        reloaded = FleetSimulator(
            load_package(root), FleetConfig(sessions=2, mode="trace")).run()
        assert reloaded.telemetry.total_sr_flops == \
            in_memory.telemetry.total_sr_flops

        meta = json.loads((root / "manifest.json").read_text())
        meta.pop("frame_info", None)
        (root / "manifest.json").write_text(json.dumps(meta))
        legacy = FleetSimulator(
            load_package(root), FleetConfig(sessions=2, mode="trace")).run()
        assert legacy.telemetry.total_sr_flops == \
            in_memory.telemetry.total_sr_flops

    def test_demand_factor_scales_trace_flops_linearly(self, package):
        full = FleetSimulator(
            package, FleetConfig(sessions=2, mode="trace")).run()
        scaled = FleetSimulator(
            package, FleetConfig(sessions=2, mode="trace",
                                 sr_demand_factor=0.25)).run()
        assert scaled.telemetry.total_sr_flops == pytest.approx(
            0.25 * full.telemetry.total_sr_flops)
        counter = scaled.obs.metrics.counter("dcsr_fleet_sr_flops_total")
        assert counter.value() == pytest.approx(
            scaled.telemetry.total_sr_flops)

    def test_playback_fast_path_threads_to_every_session(self, package):
        """A fleet-wide FastPathConfig reaches each session's client: the
        fleet's frames equal a solo fast-path client's frames bitwise,
        and executed SR FLOPs land in the rollup."""
        solo = DcsrClient(
            package, fast_path=FastPathConfig(reuse=True)).play()
        fleet = FleetSimulator(
            package,
            FleetConfig(sessions=2,
                        fast_path=FastPathConfig(reuse=True))).run()
        t = fleet.telemetry
        assert t.total_sr_flops > 0
        for shell in fleet.completed():
            assert shell.result.telemetry.reused_tiles == \
                solo.telemetry.reused_tiles
            for ours, theirs in zip(shell.result.frames, solo.frames):
                assert np.array_equal(ours, theirs)


class TestBatchingEngine:
    def test_direct_submit_matches_single_frame_engine(self):
        from repro.sr import EDSR, EdsrConfig
        from repro.sr.engine import InferenceEngine

        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=5)
        batcher = BatchingInferenceEngine(max_batch=4, max_wait_s=0.0)
        rng = np.random.default_rng(0)
        frame = rng.random((16, 20, 3), dtype=np.float32)
        out = batcher.engine_for(model).enhance(frame)
        ref = InferenceEngine(model).enhance(frame)
        assert np.array_equal(out, ref)
        assert batcher.stats.n_batches == 1
        assert batcher.stats.n_frames == 1

    def test_concurrent_submissions_share_batches(self):
        import threading

        from repro.sr import EDSR, EdsrConfig

        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=5)
        batcher = BatchingInferenceEngine(max_batch=8, max_wait_s=0.2)
        rng = np.random.default_rng(1)
        frames = [rng.random((16, 20, 3), dtype=np.float32)
                  for _ in range(8)]
        outs = [None] * 8
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            outs[i] = batcher.engine_for(model).enhance(frames[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        from repro.sr.engine import InferenceEngine
        engine = InferenceEngine(model)
        for i in range(8):
            assert np.array_equal(outs[i], engine.enhance(frames[i]))
        assert batcher.stats.n_frames == 8
        # Co-arriving frames were actually merged (fewer batches than
        # frames) — with an 0.2 s door this is reliable, not timing luck.
        assert batcher.stats.n_batches < 8
        assert batcher.stats.max_batch_seen >= 2

    def test_stats_report_per_frame_share(self):
        from repro.sr import EDSR, EdsrConfig

        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=5)
        batcher = BatchingInferenceEngine(max_batch=2, max_wait_s=0.0)
        adapter = batcher.engine_for(model)
        frame = np.zeros((16, 20, 3), dtype=np.float32)
        adapter.enhance(frame)
        assert adapter.stats.frames == 1
        assert adapter.stats.flops > 0

    def test_rider_stats_sum_to_batch_aggregate(self):
        """Regression: riders used to receive the *whole* batched call's
        counters, so fleet rollups summed tile_count N times per merged
        batch.  Each rider must now get exactly its per-frame share —
        summing across riders reproduces the true total, regardless of
        how the frames happened to group into batches."""
        import threading

        from repro.sr import EDSR, EdsrConfig

        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=5)
        batcher = BatchingInferenceEngine(max_batch=6, max_wait_s=0.2,
                                          tile=10)
        rng = np.random.default_rng(2)
        frames = [rng.random((16, 20, 3), dtype=np.float32)
                  for _ in range(6)]
        shares = [None] * 6
        barrier = threading.Barrier(6)

        def worker(i):
            adapter = batcher.engine_for(model)
            barrier.wait()
            adapter.enhance(frames[i])
            shares[i] = adapter.stats

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 2x2 tile grid per (16, 20) frame at tile=10; six riders.
        assert all(s.frames == 1 for s in shares)
        assert sum(s.tile_count for s in shares) == 6 * 4
        assert sum(s.skipped_tiles for s in shares) == 0
        assert all(s.flops > 0 for s in shares)
        # The merge actually happened, so the old N-per-batch inflation
        # would have tripped the equality above.
        assert batcher.stats.max_batch_seen >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingInferenceEngine(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            BatchingInferenceEngine(max_wait_s=-1)
        from repro.sr import EDSR, EdsrConfig
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=5)
        batcher = BatchingInferenceEngine()
        with pytest.raises(ValueError, match="RGB frame"):
            batcher.submit(model, np.zeros((16, 20), dtype=np.float32))
