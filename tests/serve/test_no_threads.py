"""Static guard: the serving layer stays on the discrete-event core.

The fleet's determinism contract (same seed ⇒ bit-identical event order
and telemetry) holds because nothing in ``src/repro/serve/`` runs on OS
threads: sessions are event-loop processes, and simultaneous events tie
break by schedule order, not by the thread scheduler.  This test walks
the package's ASTs and fails on any code that would reintroduce
thread-based execution — ``threading.Thread``, thread pools, or timer
threads.  Synchronization primitives (``threading.Lock`` and friends)
remain allowed: they keep the shared caches/pool safe for *callers* that
are threaded (e.g. a prefetching client), without the serve layer itself
spawning anything.
"""

import ast
from pathlib import Path

import repro.serve

SERVE_DIR = Path(repro.serve.__file__).parent

#: Names that execute code on another thread.  ``threading.Lock`` /
#: ``Condition`` / ``Event`` / ``local`` are deliberately absent.
BANNED = {
    ("threading", "Thread"),
    ("threading", "Timer"),
    ("concurrent.futures", "ThreadPoolExecutor"),
    ("concurrent.futures", "ProcessPoolExecutor"),
}
BANNED_ATTRS = {name for _, name in BANNED}


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        # from threading import Thread / from concurrent.futures import ...
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if (node.module, alias.name) in BANNED:
                    out.append(f"{path.name}:{node.lineno} imports "
                               f"{node.module}.{alias.name}")
        # threading.Thread(...) / futures.ThreadPoolExecutor(...)
        if isinstance(node, ast.Attribute) and node.attr in BANNED_ATTRS:
            out.append(f"{path.name}:{node.lineno} uses .{node.attr}")
    return out


def test_serve_layer_spawns_no_threads():
    sources = sorted(SERVE_DIR.glob("*.py"))
    assert sources, f"no sources under {SERVE_DIR}"
    problems = [v for src in sources for v in _violations(src)]
    assert not problems, (
        "thread-based execution is banned in repro.serve "
        "(sessions must run on the EventLoop):\n  " + "\n  ".join(problems))


def test_guard_catches_a_thread_spawn(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import threading\n"
                   "t = threading.Thread(target=print)\n")
    assert _violations(bad)

    also_bad = tmp_path / "bad2.py"
    also_bad.write_text(
        "from concurrent.futures import ThreadPoolExecutor\n")
    assert _violations(also_bad)

    fine = tmp_path / "fine.py"
    fine.write_text("import threading\nlock = threading.Lock()\n")
    assert not _violations(fine)
