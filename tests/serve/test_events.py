"""Deterministic event-loop core: ordering, processes, token buckets."""

import pytest

from repro.serve.events import EventLoop, Timeout, TokenBucket, Until


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.call_at(2.0, lambda: seen.append("b"))
        loop.call_at(1.0, lambda: seen.append("a"))
        loop.call_at(3.0, lambda: seen.append("c"))
        end = loop.run()
        assert seen == ["a", "b", "c"]
        assert end == 3.0
        assert loop.events_processed == 3

    def test_same_instant_ties_break_by_schedule_order(self):
        # The determinism anchor: simultaneous events fire in the exact
        # order they were scheduled, never by hash or insertion luck.
        loop = EventLoop()
        seen = []
        for i in range(50):
            loop.call_at(1.0, lambda i=i: seen.append(i))
        loop.run()
        assert seen == list(range(50))

    def test_past_instants_clamp_to_now(self):
        loop = EventLoop()
        seen = []
        loop.call_at(5.0, lambda: loop.call_at(1.0, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [5.0]        # never travels backwards

    def test_call_later_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            EventLoop().call_later(-1.0, lambda: None)

    def test_run_until_leaves_later_events_queued(self):
        loop = EventLoop()
        seen = []
        loop.call_at(1.0, lambda: seen.append(1))
        loop.call_at(10.0, lambda: seen.append(10))
        loop.run(until=5.0)
        assert seen == [1]
        loop.run()
        assert seen == [1, 10]

    def test_timeout_and_until_advance_process(self):
        loop = EventLoop()
        trace = []

        def proc():
            now = yield Timeout(1.5)
            trace.append(now)
            now = yield Until(10.0)
            trace.append(now)
            now = yield Until(3.0)      # in the past: clamps to now
            trace.append(now)
            return "done"

        p = loop.spawn(proc())
        loop.run()
        assert trace == [1.5, 10.0, 10.0]
        assert p.done and p.result == "done"

    def test_yield_none_reschedules_at_now(self):
        loop = EventLoop()
        trace = []

        def proc():
            trace.append("first")
            now = yield
            trace.append(now)

        loop.spawn(proc(), at=2.0)
        loop.run()
        assert trace == ["first", 2.0]

    def test_joining_a_process_waits_for_it(self):
        loop = EventLoop()
        trace = []

        def worker():
            yield Timeout(5.0)
            return 42

        def waiter(w):
            yield w
            trace.append((loop.now, w.result))

        w = loop.spawn(worker())
        loop.spawn(waiter(w))
        loop.run()
        assert trace == [(5.0, 42)]

    def test_joining_a_finished_process_resumes_immediately(self):
        loop = EventLoop()
        trace = []

        def worker():
            return 7
            yield  # pragma: no cover - makes this a generator

        def waiter(w):
            yield Timeout(3.0)
            yield w
            trace.append((loop.now, w.result))

        w = loop.spawn(worker())
        loop.spawn(waiter(w))
        loop.run()
        assert trace == [(3.0, 7)]

    def test_bad_yield_value_raises(self):
        loop = EventLoop()

        def proc():
            yield "not a command"

        loop.spawn(proc())
        with pytest.raises(TypeError, match="yielded"):
            loop.run()

    def test_timeout_rejects_negative(self):
        with pytest.raises(ValueError, match="Timeout"):
            Timeout(-0.1)

    def test_trace_history_is_reproducible(self):
        def build():
            loop = EventLoop(trace=True)

            def proc(name, delay):
                yield Timeout(delay)
                yield Timeout(delay)

            for i, d in enumerate([0.5, 0.25, 0.5]):
                loop.spawn(proc(f"p{i}", d), name=f"p{i}")
            loop.run()
            return loop.history

        first, second = build(), build()
        assert first == second
        assert len(first) > 0

    def test_untrace_loop_keeps_no_history(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        loop.run()
        assert loop.history is None


class TestTokenBucket:
    def test_full_bucket_grants_instantly(self):
        bucket = TokenBucket(rate_bps=1000.0)
        assert bucket.consume(1000.0, now=0.0) == 0.0
        assert bucket.waited_s == 0.0

    def test_deficit_waits_exactly_refill_time(self):
        bucket = TokenBucket(rate_bps=1000.0, burst_bits=1000.0)
        bucket.consume(1000.0, now=0.0)             # drain the burst
        wait = bucket.consume(500.0, now=0.0)       # empty: wait 500/1000
        assert wait == pytest.approx(0.5)
        assert bucket.waited_s == pytest.approx(0.5)

    def test_refills_at_rate_while_idle(self):
        bucket = TokenBucket(rate_bps=1000.0, burst_bits=1000.0)
        bucket.consume(1000.0, now=0.0)
        assert bucket.available_bits(now=0.25) == pytest.approx(250.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_bps=1000.0, burst_bits=100.0)
        assert bucket.available_bits(now=1e6) == pytest.approx(100.0)

    def test_oversized_payload_allowed_with_proportional_wait(self):
        # A payload larger than the burst still goes through: it just
        # waits out the whole deficit (burst only shaves the first chunk).
        bucket = TokenBucket(rate_bps=1000.0, burst_bits=100.0)
        wait = bucket.consume(1100.0, now=0.0)
        assert wait == pytest.approx(1.0)           # (1100 - 100) / 1000

    def test_sustained_rate_converges_to_rate_bps(self):
        # Long-run throughput equals the configured rate: N back-to-back
        # payloads take (total_bits - burst) / rate seconds of waiting.
        bucket = TokenBucket(rate_bps=8000.0, burst_bits=8000.0)
        t = 0.0
        for _ in range(100):
            t += bucket.consume(8000.0, now=t)
        total_bits = 100 * 8000.0
        assert t == pytest.approx((total_bits - 8000.0) / 8000.0)

    def test_deterministic_sequence(self):
        def run():
            bucket = TokenBucket(rate_bps=2500.0, burst_bits=4000.0)
            waits, t = [], 0.0
            for bits in [1000.0, 5000.0, 300.0, 7000.0, 50.0]:
                w = bucket.consume(bits, now=t)
                waits.append(w)
                t += w + 0.125
            return waits

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_bps"):
            TokenBucket(rate_bps=0.0)
        with pytest.raises(ValueError, match="burst_bits"):
            TokenBucket(rate_bps=1.0, burst_bits=-5.0)
        with pytest.raises(ValueError, match="bits"):
            TokenBucket(rate_bps=1.0).consume(-1.0, now=0.0)
