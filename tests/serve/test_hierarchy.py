"""CDN cache hierarchy: edge sharding, admission policies, origin shield."""

import pytest

from repro.serve import ADMISSION_POLICIES, CacheHierarchy, SharedModelCache


def make_fetch(log=None):
    def fetch(label):
        if log is not None:
            log.append(label)
        return ("model", label)
    return fetch


class TestCacheHierarchyRouting:
    def test_sessions_shard_by_id_modulo_edges(self):
        h = CacheHierarchy(edges=3)
        assert h.edge_for(0).edge_index == 0
        assert h.edge_for(1).edge_index == 1
        assert h.edge_for(5).edge_index == 2
        assert h.edge_for(6).edge_index == 0

    def test_same_edge_sessions_share_models(self):
        h = CacheHierarchy(edges=2)
        log = []
        a = h.edge_for(0).session(make_fetch(log))
        b = h.edge_for(2).session(make_fetch(log))    # same edge as 0
        a.get(7)
        b.get(7)
        assert log == [7]                # second request was an edge hit
        assert h.stats.edge_hits == 1
        assert h.stats.requests == 2

    def test_cross_edge_miss_hits_origin_shield(self):
        h = CacheHierarchy(edges=2)
        log = []
        a = h.edge_for(0).session(make_fetch(log))
        b = h.edge_for(1).session(make_fetch(log))    # different edge
        a.get(7)
        b.get(7)
        # Both sessions paid a download over their own link, but origin
        # storage was read only once: the second pull was shielded.
        assert log == [7, 7]
        assert h.stats.edge_hits == 0
        assert h.stats.origin_fetches == 1
        assert h.stats.origin_hits == 1
        assert h.stats.origin_offload == pytest.approx(0.5)

    def test_one_edge_always_reduces_to_flat_shared_cache(self):
        # The regression anchor: edges=1 + admission=always must be
        # indistinguishable from the flat SharedModelCache the fleet
        # used before the hierarchy existed.
        flat = SharedModelCache()
        h = CacheHierarchy(edges=1, admission="always")
        sequence = [3, 3, 5, 3, 5, 9, 9, 3]
        flat_log, h_log = [], []
        fs = flat.session(make_fetch(flat_log))
        hs = h.edge_for(0).session(make_fetch(h_log))
        for label in sequence:
            fs.get(label)
            hs.get(label)
        assert h_log == flat_log
        assert h.stats.edge_hits == flat.stats.hits
        assert h.stats.downloads == flat.stats.downloads
        assert hs.stats.hit_rate == fs.stats.hit_rate

    def test_per_session_stats_are_private(self):
        h = CacheHierarchy(edges=1)
        a = h.edge_for(0).session(make_fetch())
        b = h.edge_for(0).session(make_fetch())
        a.get(1)
        b.get(1)
        assert a.stats.downloads == 1 and a.stats.hits == 0
        assert b.stats.downloads == 0 and b.stats.hits == 1
        assert b.stats.downloaded_labels == []


class TestAdmissionPolicies:
    def test_policy_list_is_exported(self):
        assert ADMISSION_POLICIES == ("always", "second-hit", "size-aware")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            CacheHierarchy(admission="lru2q")

    def test_second_hit_admits_only_on_repeat_request(self):
        h = CacheHierarchy(edges=1, admission="second-hit")
        s = h.edge_for(0).session(make_fetch())
        s.get(4)                        # first request: not stored
        assert h.stats.denied == 1
        assert 4 not in h.edges[0]
        s.get(4)                        # second request: stored now
        assert h.stats.admitted == 1
        assert 4 in h.edges[0]
        s.get(4)                        # third: a plain edge hit
        assert h.stats.edge_hits == 1

    def test_second_hit_still_shields_origin(self):
        h = CacheHierarchy(edges=1, admission="second-hit")
        s = h.edge_for(0).session(make_fetch())
        s.get(4)
        s.get(4)
        # Edge denied the first insert, but the origin shield held the
        # label, so storage was read exactly once.
        assert h.stats.origin_fetches == 1
        assert h.stats.origin_hits == 1

    def test_size_aware_denies_oversized_models(self):
        h = CacheHierarchy(edges=1, admission="size-aware",
                           model_sizes={1: 100, 2: 10_000})
        s = h.edge_for(0).session(make_fetch())
        s.get(1)                        # small: admitted
        s.get(2)                        # huge: kept out of the edge
        assert 1 in h.edges[0]
        assert 2 not in h.edges[0]
        assert h.stats.admitted == 1
        assert h.stats.denied == 1

    def test_size_aware_default_threshold_is_mean_size(self):
        h = CacheHierarchy(admission="size-aware",
                           model_sizes={1: 100, 2: 300})
        assert h.admit_bytes == pytest.approx(200.0)

    def test_size_aware_requires_sizes_or_threshold(self):
        with pytest.raises(ValueError, match="size-aware"):
            CacheHierarchy(admission="size-aware")
        CacheHierarchy(admission="size-aware", admit_bytes=500)  # explicit ok

    def test_admission_never_changes_what_sessions_receive(self):
        for policy in ADMISSION_POLICIES:
            h = CacheHierarchy(edges=2, admission=policy,
                               model_sizes={i: 100 * (i + 1)
                                            for i in range(4)})
            s = h.edge_for(0).session(make_fetch())
            got = [s.get(i % 4) for i in range(8)]
            assert got == [("model", i % 4) for i in range(8)]


class TestPinningAndEviction:
    def test_acquired_model_is_pinned_at_the_edge(self):
        h = CacheHierarchy(edges=1, edge_capacity=1)
        s = h.edge_for(0).session(make_fetch())
        s.acquire(1)
        s.get(2)                        # would evict 1, but 1 is pinned
        assert 1 in h.edges[0]
        s.release(1)
        s.get(3)                        # now 1 is evictable
        assert 1 not in h.edges[0]
        assert h.evictions >= 1

    def test_denied_admission_needs_no_edge_release(self):
        h = CacheHierarchy(edges=1, admission="second-hit")
        s = h.edge_for(0).session(make_fetch())
        s.acquire(9)                    # miss, denied at the edge
        s.release(9)                    # releases the session pin only
        with pytest.raises(ValueError, match="unpinned"):
            s.release(9)

    def test_release_without_acquire_raises(self):
        h = CacheHierarchy()
        s = h.edge_for(0).session(make_fetch())
        with pytest.raises(ValueError, match="unpinned"):
            s.release(1)

    def test_failed_fetch_counts_both_tiers(self):
        h = CacheHierarchy(edges=1)

        def failing(label):
            raise KeyError(f"missing model {label}")

        s = h.edge_for(0).session(failing)
        with pytest.raises(KeyError):
            s.acquire(1)
        assert h.stats.failed_fetches == 1
        assert s.stats.failed_fetches == 1
        assert h.stats.origin_fetches == 0      # nothing was stored

    def test_put_inserts_without_accounting(self):
        cache = SharedModelCache()
        cache.put(5, "model-5")
        assert 5 in cache
        assert cache.stats.downloads == 0
        assert cache.stats.hits == 0


class TestHierarchyStats:
    def test_offload_and_hit_rate_empty_safe(self):
        h = CacheHierarchy()
        assert h.stats.hit_rate == 0.0
        assert h.stats.origin_offload == 0.0

    def test_offload_rises_as_fleet_warms(self):
        h = CacheHierarchy(edges=4)
        cold = []
        for sid in range(16):
            s = h.edge_for(sid).session(make_fetch())
            s.get(1)
            cold.append(h.stats.origin_offload)
        # First request reads storage (offload 0); every later request is
        # either an edge hit or shielded, so offload only climbs.
        assert cold[0] == 0.0
        assert cold == sorted(cold)
        assert cold[-1] == pytest.approx(15 / 16)
        assert h.stats.origin_fetches == 1
