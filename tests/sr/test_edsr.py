"""Tests for the EDSR model, configurations, and baselines."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.sr import (
    EDSR,
    BicubicSR,
    DCSR_CONFIGS,
    EdsrConfig,
    RESOLUTIONS,
    TABLE1_FILTERS,
    TABLE1_RESBLOCKS,
    big_model_config,
    dcsr_config,
    model_size_table,
)


class TestEdsrConfig:
    def test_defaults_valid(self):
        EdsrConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            EdsrConfig(n_resblocks=0)
        with pytest.raises(ValueError):
            EdsrConfig(scale=0)
        with pytest.raises(ValueError):
            EdsrConfig(kernel_size=4)

    def test_label(self):
        assert EdsrConfig(4, 16, scale=2).label == "edsr-rb4-f16-x2"


class TestEdsrModel:
    def test_scale1_preserves_shape(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8))
        x = np.random.default_rng(0).uniform(size=(2, 3, 16, 24)).astype(np.float32)
        assert model.forward(x).shape == x.shape

    def test_scale2_doubles(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4, scale=2))
        x = np.random.default_rng(1).uniform(size=(1, 3, 8, 8)).astype(np.float32)
        assert model.forward(x).shape == (1, 3, 16, 16)

    def test_scale4(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4, scale=4))
        x = np.random.default_rng(2).uniform(size=(1, 3, 4, 4)).astype(np.float32)
        assert model.forward(x).shape == (1, 3, 16, 16)

    def test_gradients(self):
        rng = np.random.default_rng(3)
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=0)
        x = rng.uniform(size=(1, 3, 8, 8)).astype(np.float32)
        check_layer_gradients(model, x, rng)

    def test_deterministic_by_seed(self):
        a = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=5)
        b = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=5)
        x = np.random.default_rng(4).uniform(size=(1, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_enhance_frame_interface(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4))
        frame = np.random.default_rng(5).uniform(size=(16, 24, 3)).astype(np.float32)
        out = model.enhance(frame)
        assert out.shape == frame.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_enhance_rejects_bad_shape(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4))
        with pytest.raises(ValueError):
            model.enhance(np.zeros((16, 24), np.float32))
        with pytest.raises(ValueError):
            model.enhance_batch(np.zeros((2, 16, 24), np.float32))

    def test_enhance_batch(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4, scale=2))
        frames = np.random.default_rng(6).uniform(size=(3, 8, 8, 3)).astype(np.float32)
        assert model.enhance_batch(frames).shape == (3, 16, 16, 3)

    def test_size_grows_with_config(self):
        small = EDSR(EdsrConfig(n_resblocks=2, n_filters=8))
        big = EDSR(EdsrConfig(n_resblocks=8, n_filters=32))
        assert big.size_bytes() > small.size_bytes()


class TestConfigs:
    def test_dcsr_levels_match_paper(self):
        """dcSR-1/2/3 = 4/12/16 ResBlocks, 16 filters (Section 4)."""
        assert DCSR_CONFIGS["dcSR-1"].n_resblocks == 4
        assert DCSR_CONFIGS["dcSR-2"].n_resblocks == 12
        assert DCSR_CONFIGS["dcSR-3"].n_resblocks == 16
        assert all(c.n_filters == 16 for c in DCSR_CONFIGS.values())

    def test_dcsr_config_scale(self):
        cfg = dcsr_config(2, scale=4)
        assert cfg.n_resblocks == 12 and cfg.scale == 4

    def test_dcsr_bad_level(self):
        with pytest.raises(ValueError):
            dcsr_config(4)

    def test_big_model_grows_with_resolution(self):
        sizes = [EDSR(big_model_config(r)).size_bytes()
                 for r in ("720p", "1080p", "4k")]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_big_model_unknown_resolution(self):
        with pytest.raises(ValueError):
            big_model_config("8k")

    def test_resolutions_table(self):
        assert RESOLUTIONS["4k"].sr_scale == 4
        assert RESOLUTIONS["1080p"].pixels == 1920 * 1080
        assert RESOLUTIONS["720p"].sr_input_pixels == (1280 // 2) * (720 // 2)


class TestModelSizeTable:
    def test_full_grid(self):
        table = model_size_table()
        assert len(table) == len(TABLE1_FILTERS) * len(TABLE1_RESBLOCKS)

    def test_monotone_in_both_axes(self):
        """Table 1: size grows along both the filter and ResBlock axes."""
        table = model_size_table()
        for f in TABLE1_FILTERS:
            sizes = [table[(f, rb)] for rb in TABLE1_RESBLOCKS]
            assert all(a < b for a, b in zip(sizes[:-1], sizes[1:]))
        for rb in TABLE1_RESBLOCKS:
            sizes = [table[(f, rb)] for f in TABLE1_FILTERS]
            assert all(a < b for a, b in zip(sizes[:-1], sizes[1:]))

    def test_size_roughly_quadratic_in_filters(self):
        """Body parameters scale ~ nf^2 * nRB (the Table 1 structure)."""
        table = model_size_table()
        small = table[(4, 64)]
        large = table[(8, 64)]
        assert 2.5 < large / small < 4.5


class TestBicubic:
    def test_identity_at_scale1(self):
        sr = BicubicSR(1)
        frame = np.random.default_rng(7).uniform(size=(8, 8, 3)).astype(np.float32)
        np.testing.assert_array_equal(sr.enhance(frame), frame)

    def test_upscale_shape(self):
        sr = BicubicSR(2)
        frame = np.random.default_rng(8).uniform(size=(8, 8, 3)).astype(np.float32)
        assert sr.enhance(frame).shape == (16, 16, 3)

    def test_zero_download(self):
        assert BicubicSR(2).size_bytes() == 0

    def test_batch(self):
        sr = BicubicSR(2)
        frames = np.random.default_rng(9).uniform(size=(2, 8, 8, 3)).astype(np.float32)
        assert sr.enhance_batch(frames).shape == (2, 16, 16, 3)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            BicubicSR(0)
