"""Tests for patch sampling, SR training, and the minimum-model search."""

import numpy as np
import pytest

from repro.sr import (
    EDSR,
    EdsrConfig,
    SrTrainConfig,
    config_grid,
    evaluate_sr,
    find_minimum_working_model,
    frames_to_nchw,
    sample_patch_pairs,
    train_sr,
)


def _pairs(n=4, size=24, noise=0.08, seed=0):
    """Degraded/clean frame pairs: clean smooth content + blocky noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size] / (size - 1)
    hr = np.stack([
        np.stack([
            0.5 + 0.3 * np.sin(2 * np.pi * (yy + i / n)) * np.cos(np.pi * xx),
            0.5 + 0.3 * np.cos(np.pi * (xx + i / n)),
            np.full_like(yy, 0.4 + 0.05 * i),
        ], axis=-1)
        for i in range(n)
    ]).astype(np.float32)
    block_noise = rng.normal(0, noise, size=(n, size // 4, size // 4, 3))
    block_noise = np.repeat(np.repeat(block_noise, 4, axis=1), 4, axis=2)
    lr = np.clip(hr + block_noise, 0, 1).astype(np.float32)
    return lr, hr


class TestPatchSampling:
    def test_shapes(self):
        lr, hr = _pairs()
        rng = np.random.default_rng(0)
        lp, hp = sample_patch_pairs(lr, hr, 8, 10, rng)
        assert lp.shape == (10, 3, 8, 8)
        assert hp.shape == (10, 3, 8, 8)

    def test_scale_alignment(self):
        rng = np.random.default_rng(1)
        lr = rng.uniform(size=(2, 8, 8, 3)).astype(np.float32)
        hr = np.repeat(np.repeat(lr, 2, axis=1), 2, axis=2)
        lp, hp = sample_patch_pairs(lr, hr, 4, 20, rng, scale=2)
        assert hp.shape == (20, 3, 8, 8)
        # Nearest-expanded HR means every HR 2x2 block equals the LR pixel.
        np.testing.assert_allclose(hp[:, :, ::2, ::2], lp)

    def test_patches_come_from_frames(self):
        lr, hr = _pairs(n=1)
        rng = np.random.default_rng(2)
        lp, _ = sample_patch_pairs(lr, hr, 24, 3, rng)  # full-frame patch
        for p in lp:
            np.testing.assert_array_equal(p, lr[0].transpose(2, 0, 1))

    def test_validation(self):
        lr, hr = _pairs()
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            sample_patch_pairs(lr, hr[:2], 8, 4, rng)
        with pytest.raises(ValueError):
            sample_patch_pairs(lr, hr, 100, 4, rng)
        with pytest.raises(ValueError):
            sample_patch_pairs(lr, hr, 8, 0, rng)
        with pytest.raises(ValueError):
            sample_patch_pairs(lr, hr, 8, 4, rng, scale=2)

    def test_frames_to_nchw(self):
        lr, _ = _pairs(n=3)
        out = frames_to_nchw(lr)
        assert out.shape == (3, 3, 24, 24)
        with pytest.raises(ValueError):
            frames_to_nchw(np.zeros((3, 4, 4), np.float32))


class TestTraining:
    def test_loss_decreases_and_quality_improves(self):
        lr, hr = _pairs()
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
        before = evaluate_sr(model, lr, hr)["psnr"]
        history = train_sr(model, lr, hr, SrTrainConfig(
            epochs=15, steps_per_epoch=15, batch_size=8, patch_size=16,
            learning_rate=5e-3, lr_decay_epochs=6, seed=0))
        after = evaluate_sr(model, lr, hr)
        assert history.losses[-1] < history.losses[0]
        assert after["psnr"] > before

    @pytest.mark.tier2
    def test_beats_identity_baseline(self):
        """Trained SR must beat just displaying the degraded input."""
        from repro.video.quality import psnr
        lr, hr = _pairs(seed=4)
        baseline = float(np.mean([psnr(a, b) for a, b in zip(lr, hr)]))
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
        train_sr(model, lr, hr, SrTrainConfig(
            epochs=25, steps_per_epoch=15, batch_size=8, patch_size=16,
            learning_rate=5e-3, lr_decay_epochs=10, seed=0))
        assert evaluate_sr(model, lr, hr)["psnr"] > baseline

    def test_deterministic(self):
        lr, hr = _pairs()
        cfg = SrTrainConfig(epochs=2, steps_per_epoch=3, batch_size=4,
                            patch_size=12, seed=3)
        a = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=1)
        b = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=1)
        ha = train_sr(a, lr, hr, cfg)
        hb = train_sr(b, lr, hr, cfg)
        np.testing.assert_allclose(ha.losses, hb.losses)

    def test_step_count(self):
        lr, hr = _pairs()
        cfg = SrTrainConfig(epochs=3, steps_per_epoch=4, batch_size=2,
                            patch_size=12)
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4))
        history = train_sr(model, lr, hr, cfg)
        assert history.n_steps == 12
        assert len(history.losses) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SrTrainConfig(loss="huber")
        with pytest.raises(ValueError):
            SrTrainConfig(epochs=0)

    def test_patch_clamped_to_frame(self):
        """Patch size larger than the frame silently clamps (small I frames)."""
        lr, hr = _pairs(size=16)
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4))
        history = train_sr(model, lr, hr, SrTrainConfig(
            epochs=1, steps_per_epoch=2, batch_size=2, patch_size=64))
        assert history.n_steps == 2

    def test_fewer_training_frames_lower_final_loss(self):
        """Figure 11's premise: less data is easier to memorise."""
        lr, hr = _pairs(n=8, seed=5)
        cfg = SrTrainConfig(epochs=12, steps_per_epoch=12, batch_size=8,
                            patch_size=16, learning_rate=5e-3, seed=0)
        model_small = EDSR(EdsrConfig(n_resblocks=1, n_filters=6), seed=2)
        model_large = EDSR(EdsrConfig(n_resblocks=1, n_filters=6), seed=2)
        h_small = train_sr(model_small, lr[:2], hr[:2], cfg)
        h_large = train_sr(model_large, lr, hr, cfg)
        assert h_small.final_loss <= h_large.final_loss


class TestMinimumModel:
    def test_grid_sorted_by_size(self):
        grid = config_grid(filters=(4, 8), resblocks=(2, 4))
        sizes = [EDSR(c).size_bytes() for c in grid]
        assert sizes == sorted(sizes)

    def test_search_returns_working_config(self):
        lr, hr = _pairs(seed=6)
        grid = [EdsrConfig(n_resblocks=1, n_filters=4),
                EdsrConfig(n_resblocks=2, n_filters=8)]
        cfg = SrTrainConfig(epochs=10, steps_per_epoch=10, batch_size=8,
                            patch_size=16, learning_rate=5e-3, seed=0)
        search = find_minimum_working_model(lr, hr, big_psnr=10.0, grid=grid,
                                            train_config=cfg)
        # A trivially low target: the smallest config suffices.
        assert search.config == grid[0]
        assert search.psnr >= search.target_psnr
        assert len(search.evaluated) == 1

    def test_search_falls_back_to_best(self):
        lr, hr = _pairs(seed=7)
        grid = [EdsrConfig(n_resblocks=1, n_filters=4)]
        cfg = SrTrainConfig(epochs=2, steps_per_epoch=2, batch_size=4,
                            patch_size=16)
        search = find_minimum_working_model(lr, hr, big_psnr=99.0, grid=grid,
                                            train_config=cfg)
        assert search.config == grid[0]
        assert search.psnr < search.target_psnr

    def test_empty_grid_raises(self):
        lr, hr = _pairs()
        with pytest.raises(ValueError):
            find_minimum_working_model(lr, hr, 30.0, [])
