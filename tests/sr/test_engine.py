"""Tiled NHWC inference engine: equivalence, halo math, threading, timing.

The central property: for random ``EdsrConfig``s, the engine's output
matches the reference NCHW forward within 1e-5, tiled output matches
whole-frame bitwise-comparable (<= 1e-5), and thread count never changes
a single bit (tiles write disjoint output regions).
"""

import time

import numpy as np
import pytest

from repro.sr import EDSR, EdsrConfig, InferenceEngine, receptive_field_radius


def _frame(rng, h=24, w=32):
    return rng.random((h, w, 3), dtype=np.float32)


def _random_config(rng):
    scale = int(rng.choice([1, 1, 2, 3, 4]))
    return EdsrConfig(
        n_resblocks=int(rng.integers(1, 5)),
        n_filters=int(rng.choice([4, 8, 12, 16])),
        scale=scale,
        res_scale=float(rng.choice([1.0, 0.5, 0.1])),
        kernel_size=int(rng.choice([3, 3, 5])),
    )


class TestEngineEquivalence:
    def test_random_config_sweep(self):
        """Property-style sweep: engine == reference forward (<= 1e-5) and
        tiled == whole-frame (<= 1e-5) across random architectures."""
        rng = np.random.default_rng(0)
        for trial in range(6):
            config = _random_config(rng)
            model = EDSR(config, seed=trial)
            frame = _frame(rng)
            ref = model.enhance(frame)                     # reference path
            whole = InferenceEngine(model).enhance(frame)
            assert whole.shape == ref.shape
            assert np.abs(whole - ref).max() <= 2e-5, config
            tile_edge = int(rng.integers(7, 20))
            tiled = InferenceEngine(model, tile=tile_edge).enhance(frame)
            assert np.abs(tiled - whole).max() <= 1e-5, (config, tile_edge)

    def test_tiled_equals_whole_uneven_grid(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=1)
        rng = np.random.default_rng(2)
        frame = _frame(rng, h=25, w=37)                    # non-divisible
        whole = InferenceEngine(model).enhance(frame)
        for tile in (9, 16, 23):
            tiled = InferenceEngine(model, tile=tile).enhance(frame)
            assert np.abs(tiled - whole).max() <= 1e-5

    def test_threads_are_bitwise_identical(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=3)
        frame = _frame(np.random.default_rng(4), h=30, w=40)
        one = InferenceEngine(model, tile=12, threads=1).enhance(frame)
        for threads in (2, 4):
            many = InferenceEngine(model, tile=12,
                                   threads=threads).enhance(frame)
            assert np.array_equal(one, many)

    def test_batch_matches_per_frame(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=8), seed=5)
        rng = np.random.default_rng(6)
        frames = rng.random((3, 16, 20, 3), dtype=np.float32)
        engine = InferenceEngine(model, tile=10)
        batch = engine.enhance_batch(frames)
        for i in range(3):
            assert np.abs(batch[i] - engine.enhance(frames[i])).max() <= 1e-6

    def test_upscaling_output_shape(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=8, scale=2), seed=7)
        out = InferenceEngine(model, tile=9).enhance(
            _frame(np.random.default_rng(8), h=15, w=21))
        assert out.shape == (30, 42, 3)

    def test_output_clipped_to_unit_range(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=9)
        out = InferenceEngine(model).enhance(
            _frame(np.random.default_rng(10)))
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestHaloAndStats:
    def test_receptive_field_values(self):
        # (k//2) * (2 + 2*n_resblocks) body terms + upsampler/tail terms
        assert receptive_field_radius(
            EdsrConfig(n_resblocks=4, n_filters=16)) == 11
        assert receptive_field_radius(
            EdsrConfig(n_resblocks=2, n_filters=8)) == 7
        assert receptive_field_radius(
            EdsrConfig(n_resblocks=2, n_filters=8, scale=2)) == 8
        assert receptive_field_radius(
            EdsrConfig(n_resblocks=2, n_filters=8, kernel_size=5)) == 14

    def test_stats_populated(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=11)
        engine = InferenceEngine(model, tile=10)
        engine.enhance(_frame(np.random.default_rng(12), h=24, w=32))
        assert engine.stats.tile_count == 3 * 4            # ceil(24/10)*ceil(32/10)
        assert engine.stats.frames == 1
        assert engine.stats.flops > 0

    def test_rejects_bad_construction(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=13)
        with pytest.raises(ValueError):
            InferenceEngine(model, tile=0)
        with pytest.raises(ValueError):
            InferenceEngine(model, threads=0)

    def test_model_attachment_roundtrip(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=14)
        frame = _frame(np.random.default_rng(15))
        ref = model.enhance(frame)
        model.use_fast_path(tile=12)
        fast = model.enhance(frame)
        assert np.abs(fast - ref).max() <= 1e-5
        model.clear_fast_path()
        assert np.array_equal(model.enhance(frame), ref)

    def test_weight_update_reflected_without_rebuild(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=16)
        frame = _frame(np.random.default_rng(17))
        engine = InferenceEngine(model)
        before = engine.enhance(frame)
        for p in model.parameters():
            p.data -= 0.05
        after = engine.enhance(frame)
        assert not np.array_equal(before, after)
        assert np.abs(after - model_reference(model, frame)).max() <= 2e-5


class TestFlopAccounting:
    def test_tiled_flops_exceed_whole_frame(self):
        """Regression: tiles are halo-expanded before inference, so the
        tiled path computes strictly *more* FLOPs than whole-frame — the
        engine used to report the nominal ``n*h*w`` pixels for both,
        hiding the halo overhead from every telemetry consumer."""
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=20)
        frame = _frame(np.random.default_rng(21), h=48, w=64)
        whole = InferenceEngine(model)
        whole.enhance(frame)
        tiled = InferenceEngine(model, tile=20)
        tiled.enhance(frame)
        assert tiled.stats.flops > whole.stats.flops

    def test_tiled_flops_count_expanded_pixels(self):
        """The tiled total equals fpp times the sum of halo-expanded tile
        areas (computable in closed form for an interior-free grid)."""
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=22)
        frame = _frame(np.random.default_rng(23), h=20, w=20)
        whole = InferenceEngine(model)
        whole.enhance(frame)
        fpp = whole.stats.flops / (20 * 20)
        engine = InferenceEngine(model, tile=10)
        engine.enhance(frame)
        from repro.sr import receptive_field_radius
        halo = receptive_field_radius(model.config)
        expanded = 0
        for y in (0, 10):
            for x in (0, 10):
                ey0, ey1 = max(0, y - halo), min(20, y + 10 + halo)
                ex0, ex1 = max(0, x - halo), min(20, x + 10 + halo)
                expanded += (ey1 - ey0) * (ex1 - ex0)
        assert engine.stats.flops == pytest.approx(fpp * expanded, rel=1e-6)


class TestPerFrameStats:
    def test_split_is_sum_consistent(self):
        """Regression: ``per_frame`` used to hand every frame the batch's
        *whole* tile_count, so summing rider shares inflated fleet
        rollups N-fold.  The shares must now partition the aggregate."""
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=24)
        frames = np.random.default_rng(25).random((3, 24, 32, 3),
                                                  dtype=np.float32)
        engine = InferenceEngine(model, tile=10)
        engine.enhance_batch(frames)
        agg = engine.stats
        shares = [agg.per_frame(i) for i in range(agg.frames)]
        assert sum(s.tile_count for s in shares) == agg.tile_count
        assert sum(s.skipped_tiles for s in shares) == agg.skipped_tiles
        assert sum(s.flops for s in shares) == pytest.approx(agg.flops)
        assert all(s.frames == 1 for s in shares)

    def test_split_with_gate(self):
        from repro.sr import SkipGateConfig

        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4), seed=26)
        frames = np.zeros((2, 20, 20, 3), dtype=np.float32)
        frames[0] = np.random.default_rng(27).random((20, 20, 3))
        engine = InferenceEngine(model, tile=10,
                                 skip_gate=SkipGateConfig(1e-4))
        engine.enhance_batch(frames)
        agg = engine.stats
        assert agg.skipped_tiles == 4          # the all-zero frame's grid
        shares = [agg.per_frame(i) for i in range(2)]
        assert sum(s.tile_count for s in shares) == agg.tile_count
        assert sum(s.skipped_tiles for s in shares) == agg.skipped_tiles


def model_reference(model, frame):
    engine, model._engine = model._engine, None
    try:
        return model.enhance(frame)
    finally:
        model._engine = engine


@pytest.mark.timing
class TestFastPathTiming:
    def test_fast_path_not_slower_than_reference_360p(self):
        """Tier-1-safe guard: the engine must never lose to the reference
        forward on a 360p frame (the ISSUE's 3x claim is asserted in
        ``benchmarks/test_sr_inference.py``; here we only hold a 1.0x
        floor so machine load can't flake the suite)."""
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=18)
        frame = np.random.default_rng(19).random((360, 640, 3),
                                                 dtype=np.float32)
        engine = InferenceEngine(model)
        model.enhance(frame)                               # warm caches
        engine.enhance(frame)
        ref_s = min(_timed(model.enhance, frame) for _ in range(2))
        fast_s = min(_timed(engine.enhance, frame) for _ in range(2))
        assert fast_s <= ref_s, (fast_s, ref_s)


def _timed(fn, arg):
    t0 = time.perf_counter()
    fn(arg)
    return time.perf_counter() - t0
