"""Quantized inference and the tile skip gate: the fast-path contract.

Seeded property sweep over :class:`EdsrConfig` tiers asserting, for each
architecture:

- ``precision="fp32"`` with no gate is **bitwise identical** to the
  plain engine (the fast-path knobs are opt-in, never a silent change);
- reduced precisions stay within the budget the build-time calibration
  pass itself measures (`calibrate_quantized` is deterministic, and its
  reported ``psnr_quant`` is exactly what a client engine reproduces);
- the variance gate at its default threshold never fires on
  high-variance content, and a ``0.0`` threshold runs everything — both
  cases bitwise equal to the ungated engine;
- a flat frame trips the gate on every tile and falls back to bicubic.
"""

import numpy as np
import pytest

from repro.sr import (
    EDSR,
    EdsrConfig,
    InferenceEngine,
    SkipGateConfig,
    calibrate_quantized,
)
from repro.video.sampling import upscale

#: Micro-model tiers swept by every property below (Table 1 adjacent).
TIERS = [
    EdsrConfig(n_resblocks=1, n_filters=4),
    EdsrConfig(n_resblocks=2, n_filters=8),
    EdsrConfig(n_resblocks=3, n_filters=8, scale=2),
]


def _noise_frame(seed, h=24, w=32):
    return np.random.default_rng(seed).random((h, w, 3), dtype=np.float32)


@pytest.mark.parametrize("tier", range(len(TIERS)))
class TestFp32IsBitwiseDefault:
    def test_fp32_no_gate_identical(self, tier):
        model = EDSR(TIERS[tier], seed=tier)
        frame = _noise_frame(tier)
        plain = InferenceEngine(model).enhance(frame)
        fast = InferenceEngine(model, precision="fp32",
                               skip_gate=None).enhance(frame)
        assert np.array_equal(plain, fast)

    def test_fp32_tiled_no_gate_identical(self, tier):
        model = EDSR(TIERS[tier], seed=tier)
        frame = _noise_frame(tier + 10)
        plain = InferenceEngine(model, tile=10).enhance(frame)
        fast = InferenceEngine(model, tile=10, precision="fp32").enhance(frame)
        assert np.array_equal(plain, fast)

    def test_zero_threshold_gate_runs_everything(self, tier):
        """variance >= 0.0 holds for every tile, so a 0-threshold gate is
        the ungated engine, bit for bit, with no skips counted."""
        model = EDSR(TIERS[tier], seed=tier)
        frame = _noise_frame(tier + 20)
        plain = InferenceEngine(model, tile=10).enhance(frame)
        gated_engine = InferenceEngine(model, tile=10,
                                       skip_gate=SkipGateConfig(0.0))
        gated = gated_engine.enhance(frame)
        assert np.array_equal(plain, gated)
        assert gated_engine.stats.skipped_tiles == 0


@pytest.mark.parametrize("tier", range(len(TIERS)))
class TestQuantWithinCalibratedBudget:
    def test_client_reproduces_calibrated_psnr(self, tier):
        """The delta the server records is the delta a client gets: the
        quantized engine's output against the same reference scores the
        exact PSNR the calibration pass reported."""
        from repro.video.quality import psnr

        config = TIERS[tier]
        model = EDSR(config, seed=tier)
        rng = np.random.default_rng(tier)
        lq = rng.random((2, 16, 20, 3), dtype=np.float32)
        hr = np.stack([upscale(f, config.scale) for f in lq]) \
            if config.scale > 1 else lq.copy()
        results = calibrate_quantized(model, lq, hr)
        for precision, record in results.items():
            out = InferenceEngine(model, precision=precision).enhance_batch(lq)
            assert min(psnr(out, hr), 99.0) == pytest.approx(
                record.psnr_quant, abs=1e-9)
            assert np.isfinite(record.delta_db)

    def test_fp16_budget_is_tight(self, tier):
        """fp16 only rounds operands: on random models its PSNR cost is
        far below the 0.3 dB shipping budget."""
        config = TIERS[tier]
        model = EDSR(config, seed=tier + 5)
        rng = np.random.default_rng(tier + 5)
        lq = rng.random((2, 16, 20, 3), dtype=np.float32)
        hr = np.stack([upscale(f, config.scale) for f in lq]) \
            if config.scale > 1 else lq.copy()
        results = calibrate_quantized(model, lq, hr, precisions=("fp16",))
        assert abs(results["fp16"].delta_db) <= 0.05

    def test_int8_tracks_fp32_output(self, tier):
        """W8A8 noise is bounded relative to the fp32 forward itself
        (the budget the manifest records is content-specific; this is
        the architecture-level sanity floor)."""
        from repro.video.quality import psnr

        model = EDSR(TIERS[tier], seed=tier + 9)
        frame = _noise_frame(tier + 9, h=16, w=20)
        fp32 = InferenceEngine(model).enhance(frame)
        int8 = InferenceEngine(model, precision="int8").enhance(frame)
        assert psnr(int8, fp32) >= 24.0

    def test_size_monotone(self, tier):
        results = calibrate_quantized(
            EDSR(TIERS[tier], seed=tier),
            _noise_frame(tier)[None], _noise_frame(tier)[None]
            if TIERS[tier].scale == 1
            else upscale(_noise_frame(tier), TIERS[tier].scale)[None])
        assert results["int8"].size_bytes < results["fp16"].size_bytes


class TestSkipGate:
    def test_default_gate_never_fires_on_high_variance(self):
        """Random noise tiles sit orders of magnitude above the default
        threshold, so a gated engine is a no-op there."""
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
        frame = _noise_frame(42, h=30, w=40)
        plain = InferenceEngine(model, tile=10).enhance(frame)
        engine = InferenceEngine(model, tile=10, skip_gate=SkipGateConfig())
        gated = engine.enhance(frame)
        assert engine.stats.skipped_tiles == 0
        assert np.array_equal(plain, gated)

    def test_flat_frame_skips_every_tile(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=1)
        frame = np.full((20, 30, 3), 0.5, dtype=np.float32)
        engine = InferenceEngine(model, tile=10,
                                 skip_gate=SkipGateConfig(1e-6))
        out = engine.enhance(frame)
        assert engine.stats.tile_count == 0
        assert engine.stats.skipped_tiles == 6
        # Scale 1: the bicubic fallback is a passthrough copy.
        assert np.array_equal(out, frame)

    def test_flat_frame_skip_matches_bicubic_at_scale(self):
        config = EdsrConfig(n_resblocks=1, n_filters=4, scale=2)
        model = EDSR(config, seed=2)
        frame = np.full((16, 20, 3), 0.25, dtype=np.float32)
        engine = InferenceEngine(model, tile=8,
                                 skip_gate=SkipGateConfig(1e-6))
        out = engine.enhance(frame)
        assert engine.stats.tile_count == 0
        assert out.shape == (32, 40, 3)
        assert np.allclose(out, upscale(frame, 2), atol=1e-6)

    def test_mixed_frame_runs_only_detailed_tiles(self):
        """Half flat, half noise: the gate splits the tile grid and the
        engine's counters stay sum-consistent."""
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=3)
        frame = np.full((20, 40, 3), 0.5, dtype=np.float32)
        frame[:, 20:] = _noise_frame(7, h=20, w=20)
        engine = InferenceEngine(model, tile=10,
                                 skip_gate=SkipGateConfig(1e-4))
        out = engine.enhance(frame)
        stats = engine.stats
        assert stats.skipped_tiles == 4      # the flat half of a 2x4 grid
        assert stats.tile_count == 4
        assert stats.tile_count + stats.skipped_tiles == 8
        # Detailed tiles match the ungated engine exactly.
        plain = InferenceEngine(model, tile=10).enhance(frame)
        assert np.array_equal(out[:, 20:], plain[:, 20:])
        # Flat tiles are the bicubic (here: passthrough) fallback.
        assert np.array_equal(out[:, :20], frame[:, :20])

    def test_gate_threshold_validation(self):
        with pytest.raises(ValueError):
            SkipGateConfig(-1.0)
        with pytest.raises(TypeError):
            InferenceEngine(EDSR(EdsrConfig(1, 4), seed=0), skip_gate="hi")
