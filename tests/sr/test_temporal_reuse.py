"""Temporal tile reuse: bitwise-exact cache hits, precise invalidation,
bounded memory, and calibrated tolerance mode.

The central property mirrors the engine suite's: exact-mode reuse must be
*invisible* in the output bits — an engine with ``reuse`` enabled emits
exactly the frames a reuse-free engine would, it just runs fewer tiles.
Tolerance mode trades bits for hits, and ``calibrate_reuse`` measures the
PSNR price so a session plays with a known budget.
"""

import numpy as np
import pytest

from repro.sr import (EDSR, EdsrConfig, InferenceEngine, SkipGateConfig,
                      TileReuseCache, TileReuseConfig, calibrate_reuse,
                      receptive_field_radius)

H, W, TILE = 48, 64, 16           # 3x4 tile grid (12 tiles) at tile=16


def _model(seed=11):
    return EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=seed)


def _frame(seed=0, h=H, w=W):
    return np.random.default_rng(seed).random((h, w, 3), dtype=np.float32)


def _total(stats):
    return stats.tile_count + stats.skipped_tiles + stats.reused_tiles


class TestExactReuse:
    def test_identical_frame_reuses_every_tile_bitwise(self):
        model = _model()
        frame = _frame(1)
        ref = InferenceEngine(model, tile=TILE).enhance(frame)
        engine = InferenceEngine(model, tile=TILE, reuse=True)
        first = engine.enhance(frame)
        second = engine.enhance(frame)
        assert engine.stats.reused_tiles == 12   # stats are per-call
        assert engine.stats.tile_count == 0
        assert np.array_equal(first, ref)
        assert np.array_equal(second, ref)

    def test_single_pixel_change_recomputes_only_touched_tiles(self):
        """A pixel at (8, 8) sits inside tile (0, 0)'s halo-expanded
        region and no other's (halo 7 < 16 - 8), so exactly one tile
        recomputes and eleven ride the cache."""
        model = _model()
        assert receptive_field_radius(model.config) == 7
        frame = _frame(2)
        changed = frame.copy()
        changed[8, 8, 0] = 1.0 - changed[8, 8, 0]
        engine = InferenceEngine(model, tile=TILE, reuse=True)
        engine.enhance(frame)
        out = engine.enhance(changed)
        assert engine.stats.tile_count == 1      # stats are per-call
        assert engine.stats.reused_tiles == 11
        # Correctness, not just accounting: the composite equals a full
        # recompute of the changed frame, bit for bit.
        ref = InferenceEngine(model, tile=TILE).enhance(changed)
        assert np.array_equal(out, ref)

    def test_reuse_engine_is_bitwise_invisible_on_real_sequences(self):
        """Across a varied sequence (static, drifting, cut), every frame
        from the reuse engine equals the reuse-free engine's bits."""
        model = _model()
        rng = np.random.default_rng(3)
        base = rng.random((H, W, 3), dtype=np.float32)
        drift = base.copy()
        drift[20:30, 40:50] = rng.random((10, 10, 3))
        cut = rng.random((H, W, 3), dtype=np.float32)
        plain = InferenceEngine(model, tile=TILE)
        reuse = InferenceEngine(model, tile=TILE, reuse=True)
        reused = 0
        for frame in (base, base, drift, drift, cut, base):
            assert np.array_equal(reuse.enhance(frame), plain.enhance(frame))
            reused += reuse.stats.reused_tiles   # stats are per-call
        # Static repeat (12) + drift repeat (12) + the drifted frame's
        # untouched tiles (6: the 10x10 patch plus halo spans 3x2 tiles).
        assert reused == 12 + 6 + 12

    def test_batch_chains_against_in_batch_anchor(self):
        """[f, f, g, g]: frame 1 reuses all 12 tiles from frame 0, frame 2
        recomputes against frame 1's content, frame 3 reuses frame 2."""
        model = _model()
        f, g = _frame(4), _frame(5)
        engine = InferenceEngine(model, tile=TILE, reuse=True)
        batch = np.stack([f, f, g, g])
        out = engine.enhance_batch(batch)
        assert engine.stats.reused_tiles == 24
        assert _total(engine.stats) == 4 * 12
        ref = InferenceEngine(model, tile=TILE)
        for i, frame in enumerate((f, f, g, g)):
            assert np.array_equal(out[i], ref.enhance(frame))


class TestInvariantAndStats:
    def test_three_way_invariant_with_gate(self):
        """Every (frame, tile) pair is exactly one of executed, gate-
        skipped, or reused — with both gates stacked."""
        model = _model()
        frame = np.zeros((H, W, 3), dtype=np.float32)
        frame[:TILE, :TILE] = _frame(6)[:TILE, :TILE]
        engine = InferenceEngine(model, tile=TILE, reuse=True,
                                 skip_gate=SkipGateConfig(1e-4))
        engine.enhance_batch(np.stack([frame, frame]))
        stats = engine.stats
        assert _total(stats) == 2 * 12
        assert stats.reused_tiles == 12          # whole second frame
        assert stats.skipped_tiles == 11         # flat tiles, first frame
        assert stats.tile_count == 1

    def test_per_frame_split_partitions_reused_tiles(self):
        model = _model()
        frame = _frame(7)
        engine = InferenceEngine(model, tile=TILE, reuse=True)
        engine.enhance_batch(np.stack([frame, frame, frame]))
        agg = engine.stats
        shares = [agg.per_frame(i) for i in range(agg.frames)]
        assert sum(s.reused_tiles for s in shares) == agg.reused_tiles
        assert sum(s.tile_count for s in shares) == agg.tile_count
        assert sum(s.skipped_tiles for s in shares) == agg.skipped_tiles
        assert all(_total(s) == 12 for s in shares)

    def test_reused_counter_recorded(self):
        from repro.obs import Observability

        obs = Observability(root_name="test")
        engine = InferenceEngine(_model(), tile=TILE, reuse=True, obs=obs)
        frame = _frame(8)
        engine.enhance(frame)
        engine.enhance(frame)
        counter = obs.metrics.counter("dcsr_sr_reused_tiles_total")
        assert counter.value() == 12


class TestBoundedCache:
    def test_lru_never_exceeds_budget_and_peak_is_tracked(self):
        engine = InferenceEngine(_model(), tile=TILE,
                                 reuse=TileReuseConfig(max_tiles=4))
        frame = _frame(9)
        engine.enhance(frame)
        assert len(engine.reuse_cache) <= 4
        assert engine.reuse_cache.peak_resident == 4

    def test_thrashing_cache_reuses_nothing_but_stays_correct(self):
        """Budget below the 12-tile grid: sequential insertion evicts
        every entry before its next lookup — zero hits, right bits."""
        model = _model()
        frame = _frame(10)
        engine = InferenceEngine(model, tile=TILE,
                                 reuse=TileReuseConfig(max_tiles=4))
        engine.enhance(frame)
        out = engine.enhance(frame)
        assert engine.stats.reused_tiles == 0
        assert np.array_equal(out, InferenceEngine(model,
                                                   tile=TILE).enhance(frame))

    def test_reset_forgets_all_anchors(self):
        engine = InferenceEngine(_model(), tile=TILE, reuse=True)
        frame = _frame(12)
        engine.enhance(frame)
        engine.reset_reuse()
        assert len(engine.reuse_cache) == 0
        engine.enhance(frame)
        assert engine.stats.tile_count == 12     # stats are per-call
        assert engine.stats.reused_tiles == 0

    def test_cache_reset_api(self):
        cache = TileReuseCache(2)
        cache.put("a", object())
        cache.put("b", object())
        cache.put("c", object())
        assert len(cache) == 2
        assert cache.get("a") is None            # evicted
        assert cache.get("c") is not None
        cache.reset()
        assert len(cache) == 0
        assert cache.peak_resident == 2


class TestToleranceMode:
    def test_small_noise_reused_within_tolerance(self):
        model = _model()
        rng = np.random.default_rng(13)
        frame = _frame(14)
        noisy = np.clip(frame + rng.uniform(-0.004, 0.004,
                                            frame.shape).astype(np.float32),
                        0.0, 1.0)
        engine = InferenceEngine(model, tile=TILE, reuse=0.01)
        engine.enhance(frame)
        engine.enhance(noisy)
        assert engine.stats.reused_tiles == 12

    def test_noise_beyond_tolerance_recomputes(self):
        model = _model()
        frame = _frame(15)
        far = np.clip(frame + 0.05, 0.0, 1.0)
        engine = InferenceEngine(model, tile=TILE, reuse=0.01)
        engine.enhance(frame)
        engine.enhance(far)
        assert engine.stats.reused_tiles == 0

    def test_calibrated_delta_stays_in_budget(self):
        """The acceptance budget: on a slowly drifting sequence the
        tolerance-mode PSNR cost is measured and bounded (|delta| <=
        0.3 dB), with a real hit rate to show for it."""
        model = _model()
        rng = np.random.default_rng(16)
        base = rng.random((H, W, 3), dtype=np.float32)
        frames, hrs = [], []
        for i in range(6):
            jitter = rng.uniform(-0.003, 0.003, base.shape).astype(np.float32)
            lq = np.clip(base + jitter, 0.0, 1.0)
            frames.append(lq)
            hrs.append(np.clip(lq * 1.01, 0.0, 1.0))
        cal = calibrate_reuse(model, np.stack(frames), np.stack(hrs),
                              tolerance=0.01, tile=TILE)
        assert cal.reuse_rate > 0.5
        assert abs(cal.delta_db) <= 0.3
        # Exact mode is free by construction.
        exact = calibrate_reuse(model, np.stack([base, base]),
                                np.stack([hrs[0], hrs[0]]),
                                tolerance=0.0, tile=TILE)
        assert exact.delta_db == 0.0
        assert exact.reuse_rate > 0.0


class TestValidation:
    def test_rejects_bad_reuse_configs(self):
        model = _model()
        with pytest.raises(ValueError, match="tolerance"):
            TileReuseConfig(tolerance=-0.1)
        with pytest.raises(ValueError, match="max_tiles"):
            TileReuseConfig(max_tiles=0)
        with pytest.raises(ValueError, match="max_tiles"):
            TileReuseConfig(max_tiles=None)
        with pytest.raises(TypeError, match="reuse"):
            InferenceEngine(model, reuse="yes")
        with pytest.raises(ValueError, match="kernel"):
            InferenceEngine(model, kernel="winograd")

    def test_unbounded_cache_cannot_be_constructed(self):
        with pytest.raises(ValueError, match="max_tiles"):
            TileReuseCache(None)
        with pytest.raises(ValueError, match="max_tiles"):
            TileReuseCache(0)

    def test_reuse_false_and_none_disable_the_cache(self):
        model = _model()
        for off in (None, False):
            engine = InferenceEngine(model, tile=TILE, reuse=off)
            assert engine.reuse_cache is None
            frame = _frame(17)
            engine.enhance(frame)
            engine.enhance(frame)
            assert engine.stats.reused_tiles == 0


class TestComposition:
    def test_reuse_composes_with_quantization_and_gate(self):
        """One dispatch path: reuse -> gate -> int8 kernels.  The second
        identical frame rides the cache entirely, and the reused bits are
        the quantized engine's bits."""
        model = _model()
        frame = _frame(18)
        engine = InferenceEngine(model, tile=TILE, precision="int8",
                                 reuse=True, skip_gate=SkipGateConfig(1e-6))
        first = engine.enhance(frame)
        second = engine.enhance(frame)
        assert engine.stats.reused_tiles == 12
        assert np.array_equal(first, second)

    def test_reuse_with_threads_is_deterministic(self):
        model = _model()
        frame = _frame(19)
        one = InferenceEngine(model, tile=TILE, reuse=True, threads=1)
        many = InferenceEngine(model, tile=TILE, reuse=True, threads=4)
        assert np.array_equal(one.enhance(frame), many.enhance(frame))
        assert np.array_equal(one.enhance(frame), many.enhance(frame))
        assert one.stats.reused_tiles == many.stats.reused_tiles == 12
