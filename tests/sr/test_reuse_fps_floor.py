"""Tier-2 FPS floor: the reuse fast path never regresses below half the
committed benchmark baseline.

``bench_results/sr_inference.json`` carries the full measured ladder
(``benchmarks/test_sr_inference.py``); this guard replays the same
workload shape — a 352x640 static-background session through the
``int8 + skip gate + exact reuse`` engine — and holds a 0.5x floor
against the committed ``int8 gated+reuse`` row, loose enough for machine
load, tight enough to catch a dispatch-path regression.  Weights don't
affect kernel timing, so the model is He-init rather than retrained.
"""

import time

import numpy as np
import pytest

from repro.bench import load_results
from repro.sr import EDSR, EdsrConfig, InferenceEngine, SkipGateConfig

pytestmark = pytest.mark.timing

N_FRAMES = 16


def _session_frames():
    rng = np.random.default_rng(33)
    base = rng.random((352, 640, 3), dtype=np.float32)
    patch = rng.random((48, 48, 3), dtype=np.float32)
    frames = []
    for i in range(N_FRAMES):
        frame = base.copy()
        frame[64:112, 64 + i * 24:112 + i * 24] = patch
        frames.append(frame)
    return frames


def test_reuse_session_fps_holds_half_the_committed_baseline():
    results = load_results("sr_inference")
    assert results and "temporal_reuse" in results, (
        "run benchmarks/test_sr_inference.py to regenerate the baseline")
    committed = {row["variant"]: row["fps"]
                 for row in results["temporal_reuse"]["rows"]}
    baseline = committed["int8 gated+reuse"]

    model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=40)
    engine = InferenceEngine(model, tile=128, precision="int8",
                             skip_gate=SkipGateConfig(1e-3), reuse=True)
    frames = _session_frames()
    engine.enhance(frames[0])                      # warm packed weights

    best = float("inf")
    for _ in range(2):
        engine.reset_reuse()
        t0 = time.perf_counter()
        for frame in frames:
            engine.enhance(frame)
        best = min(best, time.perf_counter() - t0)
    fps = N_FRAMES / best
    assert fps >= 0.5 * baseline, (fps, baseline)
