"""Static guard: the temporal reuse cache is never built unbounded.

``TileReuseCache`` holds a full SR output tile per entry — at 352x640
and scale 2 each anchor is megabytes, so an unbounded cache is a session
memory leak that grows with content diversity.  The constructor rejects
``None`` and non-positive budgets at runtime; this AST walk makes the
mistake structurally impossible in library code: every construction site
under ``src/repro`` must pass an explicit bound, and never the constant
``None`` (mirrors ``tests/nn/test_no_quant_in_training.py``).
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).parent


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_none(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name == "TileReuseCache":
            bound = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords
                 if kw.arg == "max_tiles"), None)
            if bound is None or _is_none(bound):
                out.append(f"{path}:{node.lineno} builds TileReuseCache "
                           "without an explicit bound")
        elif name == "TileReuseConfig":
            for kw in node.keywords:
                if kw.arg == "max_tiles" and _is_none(kw.value):
                    out.append(f"{path}:{node.lineno} passes "
                               "max_tiles=None to TileReuseConfig")
    return out


def test_library_never_builds_an_unbounded_reuse_cache():
    sources = sorted(SRC_ROOT.rglob("*.py"))
    assert sources, f"no sources under {SRC_ROOT}"
    problems = [v for src in sources for v in _violations(src)]
    assert not problems, (
        "the reuse cache must always carry an explicit entry budget:\n  "
        + "\n  ".join(problems))


def test_guard_catches_a_missing_bound(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("from repro.sr import TileReuseCache\n"
                   "cache = TileReuseCache()\n")
    assert _violations(bad)


def test_guard_catches_an_explicit_none(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.sr as sr\n"
                   "cache = sr.TileReuseCache(None)\n"
                   "cfg = sr.TileReuseConfig(max_tiles=None)\n")
    assert len(_violations(bad)) == 2


def test_guard_accepts_bounded_constructions(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("from repro.sr import TileReuseCache, TileReuseConfig\n"
                    "cache = TileReuseCache(256)\n"
                    "other = TileReuseCache(max_tiles=budget)\n"
                    "cfg = TileReuseConfig(max_tiles=64)\n")
    assert not _violations(good)
