"""Tests for the benchmark harness (result printers and workloads)."""

import json

import numpy as np
import pytest

from repro.bench import (
    CORPUS_GENRES,
    cdf_points,
    corpus_spec,
    format_table,
    make_corpus,
    print_series,
    print_table,
    quality_big_train_config,
    quality_server_config,
    save_results,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table("Demo", ["name", "value"],
                            [["alpha", 1.5], ["b", 20.25]])
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = format_table("F", ["x"], [[0.000123], [12345.6], [3.14159], [0.0]])
        assert "0.000123" in text
        assert "3.14" in text
        assert "0" in text

    def test_print_helpers_do_not_crash(self, capsys):
        print_table("T", ["a"], [[1]])
        print_series("S", [1, 2], {"y": [10, 20]})
        out = capsys.readouterr().out
        assert "== T ==" in out
        assert "== S ==" in out


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_sorted_fractions(self):
        points = cdf_points([3.0, 1.0, 2.0], n_points=3)
        values = [v for v, _ in points]
        fracs = [f for _, f in points]
        assert values == [1.0, 2.0, 3.0]
        assert fracs == [0.0, 0.5, 1.0]

    def test_point_count(self):
        points = cdf_points(list(range(100)), n_points=11)
        assert len(points) == 11

    def test_single_value_input(self):
        points = cdf_points([4.2], n_points=5)
        assert len(points) == 5
        assert all(v == 4.2 for v, _ in points)
        assert points[0][1] == 0.0
        assert points[-1][1] == 1.0

    def test_n_points_one_returns_the_max(self):
        assert cdf_points([3.0, 1.0, 2.0], n_points=1) == [(3.0, 1.0)]

    def test_n_points_below_one_rejected(self):
        with pytest.raises(ValueError, match="n_points"):
            cdf_points([1.0], n_points=0)


class TestSaveResults:
    def test_writes_json(self, tmp_path):
        path = save_results("unit", {"a": 1, "arr": np.array([1.0, 2.0]),
                                     "np_int": np.int64(5)},
                            directory=tmp_path)
        data = json.loads(path.read_text())
        assert data["a"] == 1
        assert data["arr"] == [1.0, 2.0]
        assert data["np_int"] == 5

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_results("bad", {"x": object()}, directory=tmp_path)

    def test_trace_is_embedded(self, tmp_path):
        from repro.obs import Observability, SimulatedClock, stage_totals

        obs = Observability(clock=SimulatedClock())
        with obs.tracer.span("decode", stage="decode"):
            obs.clock.advance(1.5)
        path = save_results("traced", {"fps": 30.0}, directory=tmp_path,
                            trace=obs)
        data = json.loads(path.read_text())
        assert data["fps"] == 30.0
        assert data["trace"]["name"] == "session"
        assert stage_totals(data["trace"]) == {"decode": 1.5}


class TestWorkloads:
    def test_corpus_has_six_genres(self):
        assert len(CORPUS_GENRES) == 6
        assert len(set(CORPUS_GENRES)) == 6

    def test_corpus_deterministic(self):
        spec = corpus_spec()
        a = make_corpus(spec)
        b = make_corpus(spec)
        assert len(a) == 6
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a.frames, clip_b.frames)

    def test_corpus_names_and_genres(self):
        corpus = make_corpus()
        for clip, genre in zip(corpus, CORPUS_GENRES):
            assert clip.genre == genre
            assert genre in clip.name

    def test_fast_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        spec = corpus_spec()
        assert spec.fast
        assert spec.duration_seconds < 10.0
        assert spec.sr_epochs < 25

    def test_server_config_uses_spec(self):
        spec = corpus_spec()
        config = quality_server_config(spec)
        assert config.codec.crf == spec.crf
        assert config.max_segment_len == spec.max_segment_frames
        assert config.sr_train.epochs == spec.sr_epochs

    def test_big_train_config_matches_step_budget(self):
        spec = corpus_spec()
        big = quality_big_train_config(spec)
        micro = quality_server_config(spec).sr_train
        assert big.epochs == micro.epochs
        assert big.steps_per_epoch == micro.steps_per_epoch
