"""Executable documentation: fenced python blocks in README and docs run.

Every ```python block in README.md and docs/*.md is extracted and executed
(blocks in one file share a namespace, in order, with the CWD pointed at a
temp directory so doc snippets may write packages/caches).  Docs therefore
stay smoke-scale and cannot rot as the API grows.

A block whose first line is ``# doc-only`` is illustrative (pseudo-code,
fragments) and is skipped.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
DOC_ONLY = "# doc-only"


def python_blocks(path: Path) -> list[str]:
    return FENCE.findall(path.read_text())


def runnable_blocks(path: Path) -> list[str]:
    return [b for b in python_blocks(path)
            if not b.lstrip().startswith(DOC_ONLY)]


def test_doc_corpus_is_nonempty():
    """The harness must actually be exercising something."""
    assert any(runnable_blocks(path) for path in DOC_FILES)
    assert (ROOT / "README.md") in DOC_FILES


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_blocks_execute(path, tmp_path, monkeypatch):
    blocks = runnable_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no executable python blocks")
    monkeypatch.chdir(tmp_path)  # doc snippets may write packages/caches
    namespace = {"__name__": f"docs_{path.stem}"}
    for i, block in enumerate(blocks):
        code = compile(block, f"{path.name}[block {i}]", "exec")
        exec(code, namespace)
