"""Parallel server builds: determinism, config validation, error paths.

The determinism contract (docs/performance.md): for a fixed ``ServerConfig``
— including ``ParallelConfig.chunk_size`` — the built package is
bit-identical at any worker count and backend, because every pool task
performs exactly the serial path's operations and models cross the process
boundary through the lossless ``repro.nn.serialize`` round-trip.
"""

import numpy as np
import pytest

import repro.core.server as server_mod
from repro.core import (
    ClusterTrainingError,
    ParallelConfig,
    ServerConfig,
    build_package,
)
from repro.core.parallel import BUILD_STAGES
from repro.features import VaeTrainConfig
from repro.nn import serialize_to_bytes
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


@pytest.fixture(scope="module")
def tiny_clip():
    return make_video("parallel", "news", seed=3, size=(32, 32),
                      duration_seconds=3.0, fps=8, n_distinct_scenes=3)


def tiny_config(**overrides) -> ServerConfig:
    base = dict(
        codec=CodecConfig(crf=51),
        fixed_segment_len=6,
        vae_train=VaeTrainConfig(epochs=3, batch_size=4),
        sr_train=SrTrainConfig(epochs=2, steps_per_epoch=3, batch_size=2,
                               patch_size=8),
        micro_config=EdsrConfig(n_resblocks=1, n_filters=4),
        k_override=2,
        validate_in_loop=False,
        parallel=ParallelConfig(chunk_size=2),
    )
    base.update(overrides)
    return ServerConfig(**base)


def assert_identical_packages(a, b):
    assert a.manifest == b.manifest
    assert set(a.models) == set(b.models)
    for label in a.models:
        assert (serialize_to_bytes(a.models[label])
                == serialize_to_bytes(b.models[label]))
    assert np.array_equal(a.features, b.features)
    for seg_a, seg_b in zip(a.encoded.segments, b.encoded.segments):
        assert seg_a.payload == seg_b.payload
        assert seg_a.frames == seg_b.frames
    for frame_a, frame_b in zip(a.decoded_low.frames, b.decoded_low.frames):
        assert np.array_equal(frame_a.y, frame_b.y)


@pytest.fixture(scope="module")
def serial_package(tiny_clip):
    return build_package(tiny_clip, tiny_config())


class TestDeterminism:
    def test_process_pool_bit_identical(self, tiny_clip, serial_package):
        pooled = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=2, backend="process",
                                    chunk_size=2, auto_calibrate=False)))
        assert_identical_packages(serial_package, pooled)

    def test_thread_pool_bit_identical(self, tiny_clip, serial_package):
        pooled = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=3, backend="thread",
                                    chunk_size=2, auto_calibrate=False)))
        assert_identical_packages(serial_package, pooled)

    def test_worker_count_does_not_matter(self, tiny_clip):
        two = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=2, backend="thread",
                                    chunk_size=2, auto_calibrate=False)))
        four = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=4, backend="thread",
                                    chunk_size=2, auto_calibrate=False)))
        assert_identical_packages(two, four)


class TestParallelConfig:
    def test_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelConfig(backend="gpu")

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelConfig(workers=0, backend="process")

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelConfig(chunk_size=0)

    def test_one_worker_degrades_to_serial(self):
        config = ParallelConfig(workers=1, backend="process")
        assert config.effective_backend() == "serial"
        assert not config.is_parallel

    def test_default_is_serial(self):
        config = ParallelConfig()
        assert config.effective_backend() == "serial"
        assert config.resolve_workers() == 1

    def test_workers_none_resolves_to_cpu_count(self):
        import os
        config = ParallelConfig(backend="process", auto_calibrate=False)
        assert config.resolve_workers() == (os.cpu_count() or 1)


class TestAutoCalibration:
    """Honesty gate: a pool that cannot win must not *report* a pool.

    ``parallel_build.json`` once published "process x2" rows measured on
    a single-core host — speedups structurally <= 1.0x.  With
    ``auto_calibrate`` (the default) such a config runs and reports
    serial; forcing the pool remains possible for mechanics tests.
    """

    def _patch_cores(self, monkeypatch, n):
        import repro.core.parallel as parallel_mod
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: n)

    def test_single_core_host_calibrates_to_serial(self, monkeypatch):
        self._patch_cores(monkeypatch, 1)
        config = ParallelConfig(workers=2, backend="process")
        assert config.effective_backend() == "serial"
        assert config.resolve_workers() == 1
        assert not config.is_parallel

    def test_multi_core_host_keeps_the_pool(self, monkeypatch):
        self._patch_cores(monkeypatch, 4)
        config = ParallelConfig(workers=2, backend="process")
        assert config.effective_backend() == "process"
        assert config.resolve_workers() == 2

    def test_opt_out_forces_the_pool(self, monkeypatch):
        self._patch_cores(monkeypatch, 1)
        config = ParallelConfig(workers=2, backend="thread",
                                auto_calibrate=False)
        assert config.effective_backend() == "thread"
        assert config.resolve_workers() == 2

    def test_calibrated_build_reports_serial(self, tiny_clip, monkeypatch):
        self._patch_cores(monkeypatch, 1)
        package = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=2, backend="process",
                                    chunk_size=2)))
        assert package.telemetry.backend == "serial"
        assert package.telemetry.workers == 1


class TestErrorPropagation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_failure_carries_cluster_id(self, tiny_clip, monkeypatch,
                                             backend):
        def failing_train(model, lq, hr, config):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(server_mod, "train_sr", failing_train)
        with pytest.raises(ClusterTrainingError, match="cluster 0"):
            build_package(tiny_clip, tiny_config(
                parallel=ParallelConfig(workers=2, backend=backend, chunk_size=2,
                                        auto_calibrate=False)))

    def test_error_label_attribute(self, tiny_clip, monkeypatch):
        monkeypatch.setattr(
            server_mod, "train_sr",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(ClusterTrainingError) as excinfo:
            build_package(tiny_clip, tiny_config(
                parallel=ParallelConfig(workers=2, backend="thread", chunk_size=2,
                                        auto_calibrate=False)))
        assert excinfo.value.label == 0
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_serial_path_raises_original_exception(self, tiny_clip,
                                                   monkeypatch):
        """workers=1/serial is the pre-pool code path: no wrapping."""
        monkeypatch.setattr(
            server_mod, "train_sr",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            build_package(tiny_clip, tiny_config())


class TestTelemetry:
    def test_stages_recorded(self, serial_package):
        telemetry = serial_package.telemetry
        for name in ("split", "encode", "embed", "cluster", "train"):
            assert name in telemetry.stage_seconds
        assert "validate" not in telemetry.stage_seconds  # disabled above
        assert set(telemetry.stage_seconds) <= set(BUILD_STAGES)
        assert telemetry.total_seconds > 0
        assert telemetry.train_flops > 0
        assert telemetry.backend == "serial"
        assert telemetry.workers == 1

    def test_validate_stage_recorded_when_enabled(self, tiny_clip):
        package = build_package(tiny_clip, tiny_config(validate_in_loop=True))
        assert "validate" in package.telemetry.stage_seconds

    def test_parallel_metadata(self, tiny_clip):
        package = build_package(tiny_clip, tiny_config(
            parallel=ParallelConfig(workers=2, backend="thread",
                                    chunk_size=2, auto_calibrate=False)))
        telemetry = package.telemetry
        assert telemetry.backend == "thread"
        assert telemetry.workers == 2
        assert set(telemetry.train_seconds_per_cluster) == set(package.models)

    def test_summary_lines_printable(self, serial_package):
        lines = serial_package.telemetry.summary_lines()
        assert any("train" in line for line in lines)
        assert any("total" in line for line in lines)
