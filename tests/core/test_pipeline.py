"""End-to-end tests for the dcSR server pipeline and client playback."""

import numpy as np
import pytest

from repro.core import (
    DcsrClient,
    ServerConfig,
    bandwidth_of,
    build_package,
    normalized_usage,
    play_low,
    play_nas,
    play_nemo,
    train_big_model,
)
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


class TestServerPipeline:
    def test_package_structure(self, package):
        assert package.manifest.n_segments == len(package.segments)
        assert package.n_models == package.selection.k
        assert package.features.shape[0] == package.manifest.n_segments
        assert len(package.encoded.segments) == package.manifest.n_segments

    def test_every_segment_has_model(self, package):
        for seg in package.manifest.segments:
            assert seg.model_label in package.models

    def test_model_sizes_recorded(self, package):
        for label, model in package.models.items():
            assert package.manifest.model_sizes[label] == model.size_bytes()

    def test_k_respects_budget(self, package, small_config):
        from repro.clustering import max_k_for_budget
        from repro.sr import EDSR
        budget = max_k_for_budget(
            EDSR(small_config.big_config).size_bytes(),
            EDSR(small_config.micro_config).size_bytes())
        assert 1 <= package.selection.k <= budget

    def test_micro_total_within_big_budget(self, package, small_config):
        """Eq. 3's purpose: deployed micro models never exceed one big model."""
        from repro.sr import EDSR
        big = EDSR(small_config.big_config).size_bytes()
        assert package.manifest.total_model_bytes <= big

    def test_recurring_scenes_share_models(self, small_clip, package):
        """The synthetic video revisits scenes, so at least two segments
        must map to the same micro model (the premise of caching)."""
        labels = package.manifest.label_sequence()
        assert len(labels) > len(set(labels))

    def test_clusters_follow_scene_identity(self, small_clip, package):
        """Segments showing the same ground-truth scene get the same label."""
        by_scene = {}
        for seg, record in zip(package.segments, package.manifest.segments):
            scene = int(small_clip.scene_ids[seg.start])
            by_scene.setdefault(scene, set()).add(record.model_label)
        consistent = sum(1 for labels in by_scene.values() if len(labels) == 1)
        assert consistent >= len(by_scene) - 1

    def test_k_override(self, small_clip, small_config):
        from dataclasses import replace
        config = replace(small_config, k_override=2)
        package = build_package(small_clip, config)
        assert package.selection.k == 2
        assert package.n_models == 2

    def test_fixed_segmentation_mode(self, small_clip, small_config):
        from dataclasses import replace
        config = replace(small_config, fixed_segment_len=20)
        package = build_package(small_clip, config)
        assert all(s.n_frames <= 20 for s in package.segments)


class TestClientPlayback:
    def test_plays_all_frames(self, package, small_clip):
        result = DcsrClient(package).play(small_clip.frames)
        assert len(result.frames) == small_clip.n_frames
        assert len(result.psnr_per_frame) == small_clip.n_frames

    def test_downloads_match_distinct_labels(self, package, small_clip):
        result = DcsrClient(package).play()
        labels = package.manifest.label_sequence()
        assert result.model_downloads == sorted(
            set(labels), key=labels.index)
        assert result.cache_stats.downloads == len(set(labels))

    def test_model_bytes_are_downloaded_sizes(self, package):
        result = DcsrClient(package).play()
        expected = sum(package.manifest.model_sizes[l]
                       for l in set(package.manifest.label_sequence()))
        assert result.model_bytes == expected

    def test_video_bytes_match_encoded(self, package):
        result = DcsrClient(package).play()
        assert result.video_bytes == package.encoded.total_bytes

    def test_sr_applied_once_per_i_frame(self, package):
        result = DcsrClient(package).play()
        n_i = sum(1 for t in result.frame_types if t == "I")
        assert result.sr_inferences == n_i

    def test_enhances_i_frames_over_low(self, package, small_clip):
        """dcSR's I frames must beat the unenhanced decode's I frames."""
        dcsr = DcsrClient(package).play(small_clip.frames)
        low = play_low(package, small_clip.frames)
        def i_mean(res):
            vals = [p for t, p in zip(res.frame_types, res.psnr_per_frame)
                    if t == "I"]
            return float(np.mean(vals))
        assert i_mean(dcsr) > i_mean(low) + 0.5

    def test_bounded_cache_still_plays(self, package, small_clip):
        result = DcsrClient(package, cache_capacity=1).play(small_clip.frames)
        assert len(result.frames) == small_clip.n_frames
        assert result.cache_stats.downloads >= package.n_models

    def test_quality_without_reference_is_empty(self, package):
        result = DcsrClient(package).play()
        assert result.psnr_per_frame == []
        # Unmeasured quality reads as nan, never as "perfect".
        assert np.isnan(result.mean_psnr)
        assert np.isnan(result.mean_ssim)


class TestBaselines:
    @pytest.fixture(scope="class")
    def big(self, package, small_clip):
        return train_big_model(
            package, small_clip.frames,
            EdsrConfig(n_resblocks=2, n_filters=12),
            SrTrainConfig(epochs=30, steps_per_epoch=10, batch_size=8,
                          patch_size=16, learning_rate=5e-3,
                          lr_decay_epochs=12), seed=1)

    def test_nas_enhances_every_frame(self, package, small_clip, big):
        result = play_nas(package, big, small_clip.frames)
        assert result.sr_inferences == small_clip.n_frames
        assert result.model_bytes == big.size_bytes

    def test_nemo_enhances_only_i_frames(self, package, small_clip, big):
        result = play_nemo(package, big, small_clip.frames)
        n_i = sum(1 for t in result.frame_types if t == "I")
        assert result.sr_inferences == n_i

    def test_low_downloads_no_model(self, package, small_clip):
        result = play_low(package, small_clip.frames)
        assert result.model_bytes == 0
        assert result.sr_inferences == 0

    def test_nas_beats_low(self, package, small_clip, big):
        nas = play_nas(package, big, small_clip.frames)
        low = play_low(package, small_clip.frames)
        assert nas.mean_psnr > low.mean_psnr

    def test_bandwidth_ordering(self, package, small_clip, small_config):
        """Figure 10's shape: LOW < dcSR < NAS = NEMO.

        Bandwidth depends only on model *sizes*, so the big model here uses
        the real budget config (untrained — quality is irrelevant).
        """
        from repro.core import BigModelBaseline
        from repro.sr import EDSR
        big = BigModelBaseline(model=EDSR(small_config.big_config))
        dcsr = DcsrClient(package).play()
        nas = play_nas(package, big)
        nemo = play_nemo(package, big)
        low = play_low(package)
        usages = {name: bandwidth_of(name, res) for name, res in
                  [("NAS", nas), ("NEMO", nemo), ("dcSR", dcsr), ("LOW", low)]}
        norm = normalized_usage(usages)
        assert norm["NAS"] == 1.0
        assert norm["NEMO"] == 1.0
        assert norm["LOW"] < norm["dcSR"] < 1.0

    def test_normalized_usage_validation(self):
        from repro.core import BandwidthUsage
        with pytest.raises(KeyError):
            normalized_usage({"dcSR": BandwidthUsage("dcSR", 1, 1)})


class TestStartupDelay:
    def test_formula(self):
        from repro.core import startup_delay
        # 1 Mbit/s, 125 KB total -> 1 second.
        assert np.isclose(startup_delay(1e6, 100_000, 25_000), 1.0)

    def test_bandwidth_validation(self):
        from repro.core import startup_delay
        with pytest.raises(ValueError):
            startup_delay(0.0, 1000, 0)

    def test_dcsr_starts_faster_than_big_model_methods(self, package,
                                                       small_config):
        """dcSR needs only the first micro model up front; NAS/NEMO the
        whole big model — the startup ordering the paper motivates."""
        from repro.core import startup_comparison
        from repro.sr import EDSR
        big_bytes = EDSR(small_config.big_config).size_bytes()
        delays = startup_comparison(package, big_bytes, bandwidth_bps=1e6)
        assert delays["LOW"] <= delays["dcSR"] < delays["NAS"]
        assert delays["NAS"] == delays["NEMO"]


class TestInLoopValidation:
    def test_manifest_records_flag(self, package):
        assert isinstance(package.manifest.enhance_in_loop, bool)

    def test_display_only_never_below_low(self, package, small_clip):
        """Display-only enhancement is a drift-free floor: every frame is
        either untouched or an enhanced I frame."""
        from repro.core import DcsrClient, play_low
        manifest = package.manifest
        saved = manifest.enhance_in_loop
        try:
            manifest.enhance_in_loop = False
            dcsr = DcsrClient(package).play(small_clip.frames)
        finally:
            manifest.enhance_in_loop = saved
        low = play_low(package, small_clip.frames)
        # Non-I frames are bit-identical to the plain decode.
        for ftype, a, b in zip(dcsr.frame_types, dcsr.frames, low.frames):
            if ftype != "I":
                np.testing.assert_array_equal(a, b)
        assert dcsr.mean_psnr >= low.mean_psnr

    def test_validation_picks_winner(self, package, small_clip):
        """The recorded mode scores at least as well as the alternative."""
        from repro.core import DcsrClient
        manifest = package.manifest
        saved = manifest.enhance_in_loop
        try:
            scores = {}
            for mode in (True, False):
                manifest.enhance_in_loop = mode
                scores[mode] = DcsrClient(package).play(small_clip.frames).mean_psnr
        finally:
            manifest.enhance_in_loop = saved
        assert scores[saved] >= scores[not saved] - 1e-9

    def test_validation_can_be_disabled(self, small_clip, small_config):
        from dataclasses import replace
        from repro.core import build_package
        config = replace(small_config, validate_in_loop=False)
        pkg = build_package(small_clip, config)
        assert pkg.manifest.enhance_in_loop is True  # the default, unvalidated
