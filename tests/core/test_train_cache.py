"""The content-addressed training cache: hits skip training, stale keys miss."""

import numpy as np
import pytest

import repro.core.server as server_mod
from repro.core import ParallelConfig, ServerConfig, TrainingCache, build_package
from repro.features import VaeTrainConfig
from repro.nn import serialize_to_bytes
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


@pytest.fixture(scope="module")
def tiny_clip():
    return make_video("cache", "news", seed=3, size=(32, 32),
                      duration_seconds=3.0, fps=8, n_distinct_scenes=3)


def cached_config(cache_dir, **overrides) -> ServerConfig:
    base = dict(
        codec=CodecConfig(crf=51),
        fixed_segment_len=6,
        vae_train=VaeTrainConfig(epochs=3, batch_size=4),
        sr_train=SrTrainConfig(epochs=2, steps_per_epoch=3, batch_size=2,
                               patch_size=8),
        micro_config=EdsrConfig(n_resblocks=1, n_filters=4),
        k_override=2,
        validate_in_loop=False,
        train_cache_dir=str(cache_dir),
    )
    base.update(overrides)
    return ServerConfig(**base)


@pytest.fixture
def train_spy(monkeypatch):
    """Counts ``train_sr`` calls made by the (serial) build."""
    calls = []
    real_train = server_mod.train_sr

    def counting_train(model, lq, hr, config, **kwargs):
        calls.append(lq.shape[0])
        return real_train(model, lq, hr, config, **kwargs)

    monkeypatch.setattr(server_mod, "train_sr", counting_train)
    return calls


class TestCacheHits:
    def test_second_build_skips_training(self, tiny_clip, tmp_path, train_spy):
        first = build_package(tiny_clip, cached_config(tmp_path))
        assert len(train_spy) == first.n_models
        assert first.telemetry.cache_misses == first.n_models
        assert first.telemetry.cache_hits == 0

        train_spy.clear()
        second = build_package(tiny_clip, cached_config(tmp_path))
        assert train_spy == []          # full cache hit: train_sr never called
        assert second.telemetry.cache_hits == second.n_models
        assert second.telemetry.cache_misses == 0
        assert second.telemetry.train_flops == 0

        for label in first.models:
            assert (serialize_to_bytes(first.models[label])
                    == serialize_to_bytes(second.models[label]))
        assert first.manifest == second.manifest

    def test_hits_bypass_the_pool_too(self, tiny_clip, tmp_path):
        build_package(tiny_clip, cached_config(tmp_path))
        warm = build_package(tiny_clip, cached_config(
            tmp_path, parallel=ParallelConfig(workers=2, backend="process",
                                              auto_calibrate=False)))
        assert warm.telemetry.cache_hits == warm.n_models
        assert warm.telemetry.cache_misses == 0

    def test_cache_directory_contents(self, tiny_clip, tmp_path):
        package = build_package(tiny_clip, cached_config(tmp_path))
        cache = TrainingCache(tmp_path)
        assert cache.n_entries == package.n_models


class TestStaleKeys:
    def test_changed_crf_misses(self, tiny_clip, tmp_path, train_spy):
        build_package(tiny_clip, cached_config(tmp_path))
        train_spy.clear()
        changed = build_package(tiny_clip, cached_config(
            tmp_path, codec=CodecConfig(crf=45)))
        # New CRF -> new decoded LQ frames -> every key misses.
        assert len(train_spy) == changed.n_models
        assert changed.telemetry.cache_hits == 0

    def test_changed_train_config_misses(self, tiny_clip, tmp_path, train_spy):
        build_package(tiny_clip, cached_config(tmp_path))
        train_spy.clear()
        changed = build_package(tiny_clip, cached_config(
            tmp_path,
            sr_train=SrTrainConfig(epochs=3, steps_per_epoch=3, batch_size=2,
                                   patch_size=8)))
        assert len(train_spy) == changed.n_models
        assert changed.telemetry.cache_hits == 0

    def test_changed_seed_misses(self, tiny_clip, tmp_path, train_spy):
        build_package(tiny_clip, cached_config(tmp_path))
        train_spy.clear()
        changed = build_package(tiny_clip, cached_config(tmp_path, seed=11))
        assert len(train_spy) == changed.n_models


class TestKeyScheme:
    LQ = np.zeros((2, 8, 8, 3), dtype=np.float32)
    HR = np.ones((2, 16, 16, 3), dtype=np.float32)
    MODEL = EdsrConfig(n_resblocks=1, n_filters=4)
    TRAIN = SrTrainConfig(epochs=1, steps_per_epoch=1)

    def key(self, **overrides):
        args = dict(lq_frames=self.LQ, hr_frames=self.HR,
                    model_config=self.MODEL, train_config=self.TRAIN, seed=0)
        args.update(overrides)
        return TrainingCache.key(args["lq_frames"], args["hr_frames"],
                                 args["model_config"], args["train_config"],
                                 args["seed"])

    def test_deterministic(self):
        assert self.key() == self.key()

    def test_frame_content_sensitive(self):
        assert self.key() != self.key(lq_frames=self.LQ + 0.5)

    def test_frame_order_sensitive(self):
        """The patch sampler indexes frames, so order is part of the key."""
        hr = np.stack([self.HR[0], self.HR[1] * 2.0])
        assert (TrainingCache.key(self.LQ, hr, self.MODEL, self.TRAIN, 0)
                != TrainingCache.key(self.LQ, hr[::-1], self.MODEL,
                                     self.TRAIN, 0))

    def test_config_and_seed_sensitive(self):
        assert self.key() != self.key(model_config=EdsrConfig(
            n_resblocks=2, n_filters=4))
        assert self.key() != self.key(train_config=SrTrainConfig(
            epochs=2, steps_per_epoch=1))
        assert self.key() != self.key(seed=1)

    def test_roundtrip(self, tmp_path):
        from repro.sr import EDSR
        cache = TrainingCache(tmp_path)
        model = EDSR(self.MODEL, seed=5)
        key = self.key()
        assert key not in cache
        cache.put(key, model)
        assert key in cache
        restored = cache.get(key, self.MODEL)
        assert serialize_to_bytes(restored) == serialize_to_bytes(model)

    def test_miss_returns_none(self, tmp_path):
        cache = TrainingCache(tmp_path)
        assert cache.get("0" * 64, self.MODEL) is None
