"""Failure-injection tests: how the system behaves when things go wrong.

The paper assumes a well-behaved CDN; a deployable client must fail loudly
and predictably on corrupted streams, missing models, and broken hooks.
"""

import numpy as np
import pytest

from repro.core import DcsrClient, ModelCache
from repro.core.persist import StoredPackage
from repro.video.codec import Decoder, EncodedSegment


def _clone_package_with(package, *, segments=None, models=None, manifest=None):
    return StoredPackage(
        manifest=manifest if manifest is not None else package.manifest,
        encoded=package.encoded if segments is None else segments,
        models=models if models is not None else package.models,
        segments=package.segments,
    )


class TestCorruptBitstreams:
    def test_truncated_segment_raises(self, package):
        seg = package.encoded.segments[0]
        broken = EncodedSegment(index=seg.index, start=seg.start,
                                n_frames=seg.n_frames,
                                payload=seg.payload[: len(seg.payload) // 3],
                                frames=seg.frames)
        with pytest.raises((ValueError, EOFError)):
            Decoder().decode_segment(broken, package.encoded.width,
                                     package.encoded.height)

    def test_bitflipped_header_raises_or_misdecodes_loudly(self, package):
        seg = package.encoded.segments[0]
        payload = bytearray(seg.payload)
        payload[0] ^= 0xFF  # QP byte
        payload[1] ^= 0xFF  # frame-count prefix
        broken = EncodedSegment(index=seg.index, start=seg.start,
                                n_frames=seg.n_frames,
                                payload=bytes(payload), frames=seg.frames)
        with pytest.raises((ValueError, EOFError)):
            Decoder().decode_segment(broken, package.encoded.width,
                                     package.encoded.height)

    def test_wrong_frame_count_metadata(self, package):
        seg = package.encoded.segments[0]
        broken = EncodedSegment(index=seg.index, start=seg.start,
                                n_frames=seg.n_frames + 3,
                                payload=seg.payload, frames=seg.frames)
        with pytest.raises(ValueError):
            Decoder().decode_segment(broken, package.encoded.width,
                                     package.encoded.height)


class TestMissingModels:
    def test_missing_model_raises_keyerror(self, package):
        models = dict(package.models)
        label = next(iter(models))
        del models[label]
        broken = _clone_package_with(package, models=models)
        with pytest.raises(KeyError):
            DcsrClient(broken).play()

    def test_cache_fetch_failure_propagates(self):
        def flaky_fetch(label):
            raise ConnectionError("CDN timeout")
        cache = ModelCache(fetch=flaky_fetch)
        with pytest.raises(ConnectionError):
            cache.get(0)
        # The failed download is not recorded as a success.
        assert cache.stats.downloads == 0
        assert 0 not in cache

    def test_cache_retry_after_failure_succeeds(self):
        attempts = []

        def fetch(label):
            attempts.append(label)
            if len(attempts) == 1:
                raise ConnectionError("transient")
            return label

        cache = ModelCache(fetch=fetch)
        with pytest.raises(ConnectionError):
            cache.get(7)
        assert cache.get(7) == 7
        assert cache.stats.downloads == 1


class TestBrokenHooks:
    def test_hook_exception_propagates(self, package):
        def exploding(frame, display):
            raise RuntimeError("model inference crashed")

        decoder = Decoder(i_frame_hook=exploding)
        with pytest.raises(RuntimeError):
            decoder.decode_video(package.encoded)

    def test_hook_returning_garbage_type(self, package):
        decoder = Decoder(i_frame_hook=lambda f, d: np.zeros(3))
        with pytest.raises(TypeError):
            decoder.decode_video(package.encoded)


class TestCachePressure:
    def test_capacity_one_replays_correctly(self, package, small_clip):
        """Worst-case memory pressure: every distinct label re-downloads,
        but playback output is unchanged."""
        unbounded = DcsrClient(package).play(small_clip.frames)
        bounded = DcsrClient(package, cache_capacity=1).play(small_clip.frames)
        for a, b in zip(unbounded.frames, bounded.frames):
            np.testing.assert_array_equal(a, b)
        assert bounded.cache_stats.downloads >= unbounded.cache_stats.downloads
        assert bounded.model_bytes >= unbounded.model_bytes

    def test_eviction_count_consistent(self, package):
        result = DcsrClient(package, cache_capacity=1).play()
        stats = result.cache_stats
        assert stats.evictions == max(0, stats.downloads - 1)
