"""Tests for NEMO-style adaptive anchor selection."""

import numpy as np
import pytest

from repro.core import (
    evaluate_anchor_set,
    play_nemo,
    play_nemo_adaptive,
    select_anchors,
)
from repro.core.baselines import BigModelBaseline
from repro.sr import EDSR
from repro.video.codec import Decoder
from repro.video.frame import YuvFrame


@pytest.fixture(scope="module")
def big_for_anchors(package, small_clip, small_config):
    """A trained model reused across the anchor tests."""
    from repro.core import train_big_model
    from repro.sr import EdsrConfig, SrTrainConfig
    return train_big_model(
        package, small_clip.frames, EdsrConfig(n_resblocks=2, n_filters=10),
        SrTrainConfig(epochs=15, steps_per_epoch=10, batch_size=8,
                      patch_size=16, learning_rate=5e-3, lr_decay_epochs=6),
        seed=2)


class TestAnchorHook:
    def test_hook_sees_i_and_p_frames(self, package):
        seen = []

        def hook(frame, display, ftype):
            seen.append(ftype)
            return None

        Decoder(anchor_hook=hook).decode_video(package.encoded)
        assert "I" in seen and "P" in seen
        assert "B" not in seen

    def test_returning_none_changes_nothing(self, package):
        plain = Decoder().decode_video(package.encoded)
        hooked = Decoder(anchor_hook=lambda f, d, t: None).decode_video(
            package.encoded)
        assert all(a == b for a, b in zip(plain.frames, hooked.frames))
        assert hooked.hook_invocations == 0

    def test_both_hooks_rejected(self):
        with pytest.raises(ValueError):
            Decoder(i_frame_hook=lambda f, d: f,
                    anchor_hook=lambda f, d, t: None)

    def test_enhancing_p_anchor_propagates(self, package):
        """Brightening one P anchor brightens later frames in its segment."""
        decoded = Decoder().decode_video(package.encoded)
        p_anchor = next(i for i, t in enumerate(decoded.frame_types)
                        if t == "P")

        def brighten(frame, display, ftype):
            if display == p_anchor:
                return YuvFrame(
                    np.clip(frame.y.astype(np.int16) + 40, 0, 255).astype(np.uint8),
                    frame.u, frame.v)
            return None

        hooked = Decoder(anchor_hook=brighten).decode_video(package.encoded)
        delta = (hooked.frames[p_anchor].y.astype(np.int64).mean()
                 - decoded.frames[p_anchor].y.astype(np.int64).mean())
        assert delta > 30
        # Frames before the anchor are untouched.
        assert hooked.frames[0] == decoded.frames[0]


@pytest.mark.tier2
class TestSelection:
    def test_empty_budget_selects_nothing(self, package, small_clip,
                                          big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=0)
        assert plan.anchors == set()

    def test_selection_respects_budget(self, package, small_clip,
                                       big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=1)
        per_segment = {}
        for seg in package.encoded.segments:
            hits = [a for a in plan.anchors
                    if seg.start <= a < seg.start + seg.n_frames]
            per_segment[seg.index] = len(hits)
        assert all(count <= 1 for count in per_segment.values())

    def test_anchors_are_reference_frames(self, package, small_clip,
                                          big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=2)
        decoded = Decoder().decode_video(package.encoded)
        for anchor in plan.anchors:
            assert decoded.frame_types[anchor] in ("I", "P")

    def test_greedy_improves_monotonically(self, package, small_clip,
                                           big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=3)
        # History records only accepted (strictly improving) steps.
        assert len(plan.history) == len(plan.anchors)

    def test_evaluate_matches_selection_quality(self, package, small_clip,
                                                big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=1)
        independent = evaluate_anchor_set(
            package.encoded, big_for_anchors.model, small_clip.frames,
            plan.anchors)
        assert np.isclose(independent, plan.quality_db, atol=1e-6)

    def test_selected_beats_empty(self, package, small_clip, big_for_anchors):
        plan = select_anchors(package.encoded, big_for_anchors.model,
                              small_clip.frames, budget_per_segment=2)
        baseline = evaluate_anchor_set(
            package.encoded, big_for_anchors.model, small_clip.frames, set())
        if plan.anchors:
            assert plan.quality_db > baseline

    def test_invalid_budget(self, package, small_clip, big_for_anchors):
        with pytest.raises(ValueError):
            select_anchors(package.encoded, big_for_anchors.model,
                           small_clip.frames, budget_per_segment=-1)


@pytest.mark.tier2
class TestAdaptivePlayback:
    def test_adaptive_at_least_matches_i_frame_nemo(self, package, small_clip,
                                                    big_for_anchors):
        """Greedy selection with budget >= 1 should not lose to the paper's
        'I frames only' simplification by more than noise."""
        simple = play_nemo(package, big_for_anchors, small_clip.frames)
        adaptive = play_nemo_adaptive(package, big_for_anchors,
                                      small_clip.frames,
                                      budget_per_segment=2)
        assert adaptive.mean_psnr >= simple.mean_psnr - 0.1

    def test_adaptive_counts_inferences(self, package, small_clip,
                                        big_for_anchors):
        adaptive = play_nemo_adaptive(package, big_for_anchors,
                                      small_clip.frames,
                                      budget_per_segment=1)
        assert adaptive.sr_inferences <= package.manifest.n_segments
