"""Fast-path playback: prefetch pipeline equivalence and telemetry.

The contract: enabling :class:`FastPathConfig` (tiled engine, worker
threads, prefetch) is purely a *performance* change — frames, quality
metrics, byte accounting, and degradation semantics must match the serial
PR-2 engine.  Prefetch vs no-prefetch on the fast path is asserted
bitwise; fast path vs reference forward is asserted at the uint8 level
with a 1-LSB tolerance (float32 reassociation can flip a quantization
boundary).
"""

import numpy as np
import pytest

from repro.core import (
    DcsrClient,
    DownloadError,
    FastPathConfig,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
)


def _play(package, frames, fast=None, network=None, fallback=False,
          retries=0):
    client = DcsrClient(package, network=network,
                        retry=RetryPolicy(retries=retries, backoff_s=0.0),
                        fallback=fallback, fast_path=fast)
    return client.play(frames)


def _lossy_net(seed=11, fail_rate=0.4):
    return SimulatedNetwork(NetworkConfig(fail_rate=fail_rate, seed=seed))


class TestFastPathConfig:
    def test_validation(self, package):
        with pytest.raises(ValueError):
            DcsrClient(package, fast_path=FastPathConfig(prefetch=-1))

    def test_defaults_do_not_build_engines(self, package, small_clip):
        client = DcsrClient(package)
        client.play(small_clip.frames)
        assert client._engines == {}


class TestPrefetchEquivalence:
    def test_prefetch_bitwise_equals_serial_fast(self, package, small_clip):
        fast0 = _play(package, small_clip.frames,
                      FastPathConfig(tile=24, sr_threads=2, prefetch=0))
        fastp = _play(package, small_clip.frames,
                      FastPathConfig(tile=24, sr_threads=2, prefetch=2))
        assert len(fast0.frames) == len(fastp.frames) == small_clip.n_frames
        assert fast0.frame_types == fastp.frame_types
        for a, b in zip(fast0.frames, fastp.frames):
            assert np.array_equal(a, b)
        assert fast0.psnr_per_frame == fastp.psnr_per_frame
        assert fast0.video_bytes == fastp.video_bytes
        assert fast0.model_bytes == fastp.model_bytes

    def test_prefetch_lossy_preserves_concealment(self, package, small_clip):
        serial = _play(package, small_clip.frames,
                       FastPathConfig(tile=24, prefetch=0),
                       network=_lossy_net(), fallback=True)
        pre = _play(package, small_clip.frames,
                    FastPathConfig(tile=24, prefetch=3),
                    network=_lossy_net(), fallback=True)
        assert serial.skipped_segments == pre.skipped_segments
        assert serial.fallback_segments == pre.fallback_segments
        assert serial.frame_types == pre.frame_types
        for a, b in zip(serial.frames, pre.frames):
            assert np.array_equal(a, b)
        assert serial.total_bytes == pre.total_bytes

    def test_fast_path_matches_reference_engine(self, package, small_clip):
        ref = _play(package, small_clip.frames)
        fast = _play(package, small_clip.frames,
                     FastPathConfig(tile=20, sr_threads=2, prefetch=2))
        assert ref.frame_types == fast.frame_types
        assert ref.video_bytes == fast.video_bytes
        assert ref.model_bytes == fast.model_bytes
        for a, b in zip(ref.frames, fast.frames):
            # uint8 YUV after float32-reassociated SR: at most 1 LSB apart
            assert np.abs(a.astype(np.int16) - b.astype(np.int16)).max() <= 1
        assert abs(ref.mean_psnr - fast.mean_psnr) < 0.05

    def test_strict_mode_raises_through_prefetch(self, package, small_clip):
        network = SimulatedNetwork(NetworkConfig(fail_rate=1.0, seed=0))
        client = DcsrClient(package, network=network,
                            retry=RetryPolicy(retries=0, backoff_s=0.0),
                            fallback=False,
                            fast_path=FastPathConfig(prefetch=2))
        with pytest.raises(DownloadError):
            client.play(small_clip.frames)
        # the generator still finalized its accounting
        assert client.last_result.telemetry is not None

    def test_bounded_memory_with_prefetch(self, package, small_clip):
        depth = 2
        client = DcsrClient(package,
                            fast_path=FastPathConfig(tile=24,
                                                     prefetch=depth))
        for _ in client.iter_frames():
            pass
        peak = client.last_result.telemetry.peak_resident_frames
        longest = max(seg.n_frames for seg in package.segments)
        # prefetch holds at most `depth` extra decoded segments
        assert 0 < peak <= (depth + 1) * longest + 1
        assert peak < small_clip.n_frames or \
            small_clip.n_frames <= (depth + 1) * longest + 1

    def test_abandoned_prefetch_generator_finalizes(self, package):
        client = DcsrClient(package,
                            fast_path=FastPathConfig(prefetch=2))
        gen = client.iter_frames()
        next(gen)
        gen.close()
        assert client.last_result.telemetry is not None
        assert client.last_result.model_bytes > 0


class TestQuantizedGatedPlayback:
    """PR-7 knobs: precision, skip gate, and the sr_batch worker pool."""

    def test_validation(self, package):
        with pytest.raises(ValueError):
            FastPathConfig(precision="int4")
        with pytest.raises(ValueError):
            FastPathConfig(skip_gate=-0.5)
        with pytest.raises(ValueError):
            FastPathConfig(sr_batch=0)
        with pytest.raises(ValueError):
            # the batched pipeline needs prefetch workers to merge frames
            FastPathConfig(sr_batch=2, prefetch=0)

    def test_sr_batch_bitwise_equals_prefetch(self, package, small_clip):
        base = _play(package, small_clip.frames,
                     FastPathConfig(tile=24, prefetch=2))
        for sr_batch in (2, 3):
            batched = _play(package, small_clip.frames,
                            FastPathConfig(tile=24, prefetch=2,
                                           sr_batch=sr_batch))
            assert base.frame_types == batched.frame_types
            for a, b in zip(base.frames, batched.frames):
                assert np.array_equal(a, b)
            assert base.psnr_per_frame == batched.psnr_per_frame
            assert base.total_bytes == batched.total_bytes

    def test_sr_batch_lossy_preserves_concealment(self, package, small_clip):
        serial = _play(package, small_clip.frames,
                       FastPathConfig(tile=24, prefetch=2),
                       network=_lossy_net(), fallback=True)
        batched = _play(package, small_clip.frames,
                        FastPathConfig(tile=24, prefetch=2, sr_batch=2),
                        network=_lossy_net(), fallback=True)
        assert serial.skipped_segments == batched.skipped_segments
        assert serial.fallback_segments == batched.fallback_segments
        for a, b in zip(serial.frames, batched.frames):
            assert np.array_equal(a, b)
        assert serial.total_bytes == batched.total_bytes

    def test_sr_batch_strict_mode_raises(self, package, small_clip):
        network = SimulatedNetwork(NetworkConfig(fail_rate=1.0, seed=0))
        client = DcsrClient(package, network=network,
                            retry=RetryPolicy(retries=0, backoff_s=0.0),
                            fallback=False,
                            fast_path=FastPathConfig(prefetch=2, sr_batch=2))
        with pytest.raises(DownloadError):
            client.play(small_clip.frames)
        assert client.last_result.telemetry is not None

    def test_precision_shrinks_model_bytes(self, package, small_clip):
        """Quantized checkpoints flow through the byte accounting: the
        manifest's per-precision sizes are what the client downloads."""
        by_precision = {
            p: _play(package, small_clip.frames,
                     FastPathConfig(tile=24, precision=p))
            for p in ("fp32", "fp16", "int8")
        }
        sizes = {p: r.model_bytes for p, r in by_precision.items()}
        assert sizes["int8"] < sizes["fp16"] < sizes["fp32"]
        # video bytes are untouched by model precision
        assert len({r.video_bytes for r in by_precision.values()}) == 1

    def test_fp32_knobs_off_bitwise_identical(self, package, small_clip):
        plain = _play(package, small_clip.frames,
                      FastPathConfig(tile=24, prefetch=2))
        explicit = _play(package, small_clip.frames,
                         FastPathConfig(tile=24, prefetch=2,
                                        precision="fp32", skip_gate=None))
        for a, b in zip(plain.frames, explicit.frames):
            assert np.array_equal(a, b)
        assert plain.model_bytes == explicit.model_bytes

    def test_quantized_playback_within_budget(self, package, small_clip):
        """End-to-end PSNR cost of int8 playback stays within the 0.3 dB
        shipping budget the build-time calibration asserts."""
        fp32 = _play(package, small_clip.frames, FastPathConfig(tile=24))
        int8 = _play(package, small_clip.frames,
                     FastPathConfig(tile=24, precision="int8"))
        assert abs(fp32.mean_psnr - int8.mean_psnr) <= 0.3

    def test_skip_gate_counts_surface_in_telemetry(self, package,
                                                   small_clip):
        aggressive = _play(package, small_clip.frames,
                           FastPathConfig(tile=16, skip_gate=1e6))
        t = aggressive.telemetry
        # A huge threshold gates every tile to bicubic.
        assert t.skipped_tiles > 0
        assert t.tile_count == 0
        assert any("gated to bicubic" in line for line in t.summary_lines())
        off = _play(package, small_clip.frames, FastPathConfig(tile=16))
        assert off.telemetry.skipped_tiles == 0


class TestFastPathTelemetry:
    def test_fields_populated(self, package, small_clip):
        client = DcsrClient(package,
                            fast_path=FastPathConfig(tile=16, sr_threads=2,
                                                     prefetch=1))
        result = client.play(small_clip.frames)
        t = result.telemetry
        assert t.tile_count > 0
        assert t.sr_gflops > 0
        assert t.fast_path_speedup > 0          # calibration ran
        assert t.prefetch_overlap_seconds >= 0
        assert any("fastpath" in line for line in t.summary_lines())

    def test_serial_reference_leaves_fields_zero(self, package, small_clip):
        result = _play(package, small_clip.frames)
        t = result.telemetry
        assert t.tile_count == 0
        assert t.sr_gflops == 0
        assert t.fast_path_speedup == 0
        assert all("fastpath" not in line for line in t.summary_lines())

    def test_calibration_can_be_disabled(self, package, small_clip):
        result = _play(package, small_clip.frames,
                       FastPathConfig(tile=16, calibrate=False))
        assert result.telemetry.fast_path_speedup == 0

    def test_whole_frame_counts_one_tile_per_inference(self, package,
                                                       small_clip):
        result = _play(package, small_clip.frames, FastPathConfig())
        assert result.telemetry.tile_count == result.sr_inferences


class TestTemporalReusePlayback:
    def test_exact_reuse_is_bitwise_invisible(self, package, small_clip):
        """`--reuse` in exact mode never changes a played frame: outputs
        equal the reuse-free fast path bit for bit, whether or not any
        tile actually rode the cache."""
        plain = _play(package, small_clip.frames, FastPathConfig())
        reused = _play(package, small_clip.frames,
                       FastPathConfig(reuse=True))
        assert len(plain.frames) == len(reused.frames)
        for ours, theirs in zip(reused.frames, plain.frames):
            assert np.array_equal(ours, theirs)

    def test_reuse_off_matches_default_fast_path(self, package, small_clip):
        """reuse=None and reuse=False are the PR-7 engine, bit for bit."""
        base = _play(package, small_clip.frames, FastPathConfig())
        for off in (None, False):
            out = _play(package, small_clip.frames,
                        FastPathConfig(reuse=off))
            assert out.telemetry.reused_tiles == 0
            for ours, theirs in zip(out.frames, base.frames):
                assert np.array_equal(ours, theirs)

    def test_blocked_kernel_playback_matches_shift(self, package,
                                                   small_clip):
        """Kernel choice is a scheduling knob: blocked GEMM playback
        agrees with the shift kernel at the uint8 level (1-LSB slack for
        float reassociation at quantization boundaries)."""
        shift = _play(package, small_clip.frames, FastPathConfig())
        blocked = _play(package, small_clip.frames,
                        FastPathConfig(kernel="blocked"))
        for ours, theirs in zip(blocked.frames, shift.frames):
            diff = np.abs(ours.astype(np.int16) - theirs.astype(np.int16))
            assert diff.max() <= 1

    def test_segment_boundary_resets_the_cache(self, package):
        """A new segment means a new model and a GOP boundary — the hook
        factory must clear the reuse cache before the segment decodes."""
        from repro.core.client import SegmentPlayback

        client = DcsrClient(package,
                            fast_path=FastPathConfig(reuse=True))
        label = package.manifest.model_label_for(0)
        model = package.models[label]
        engine = client._engine_for(model)
        frame = np.random.default_rng(31).random((24, 32, 3),
                                                 dtype=np.float32)
        engine.enhance(frame)
        assert len(engine.reuse_cache) > 0
        client._timed_hook(model, SegmentPlayback(index=1))
        assert len(engine.reuse_cache) == 0

    def test_reuse_telemetry_rolls_up(self, package, small_clip):
        result = _play(package, small_clip.frames,
                       FastPathConfig(reuse=True))
        t = result.telemetry
        assert t.reused_tiles == sum(s.sr_reused_tiles for s in t.segments)
        # The three-way partition holds at session scope too.
        assert t.tile_count + t.skipped_tiles + t.reused_tiles > 0

    def test_reuse_validation(self, package):
        with pytest.raises(ValueError, match="sr_batch"):
            DcsrClient(package,
                       fast_path=FastPathConfig(reuse=True, sr_batch=2))
        with pytest.raises(ValueError, match="tolerance"):
            DcsrClient(package, fast_path=FastPathConfig(reuse=-0.5))
