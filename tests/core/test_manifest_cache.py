"""Tests for the manifest and the model cache (Algorithm 1 / Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModelCache, SegmentRecord, VideoManifest, simulate_caching


def _manifest(labels=(0, 1, 1, 2), sizes=None):
    n = 10
    segments = [
        SegmentRecord(index=i, start=i * n, n_frames=n, model_label=lab)
        for i, lab in enumerate(labels)
    ]
    if sizes is None:
        sizes = {lab: 1000 + lab for lab in set(labels)}
    return VideoManifest(video_name="v", width=64, height=48, fps=30.0,
                         crf=51, segments=segments, model_sizes=sizes)


class TestManifest:
    def test_properties(self):
        m = _manifest()
        assert m.n_segments == 4
        assert m.n_models == 3
        assert m.n_frames == 40

    def test_label_lookup(self):
        m = _manifest()
        assert m.model_label_for(2) == 1
        with pytest.raises(KeyError):
            m.model_label_for(99)

    def test_label_sequence(self):
        assert _manifest().label_sequence() == [0, 1, 1, 2]

    def test_total_model_bytes(self):
        m = _manifest(sizes={0: 100, 1: 200, 2: 300})
        assert m.total_model_bytes == 600

    def test_missing_model_size_rejected(self):
        with pytest.raises(ValueError):
            _manifest(labels=(0, 5), sizes={0: 100})

    def test_gap_in_segments_rejected(self):
        segments = [SegmentRecord(index=0, start=0, n_frames=10, model_label=0),
                    SegmentRecord(index=1, start=15, n_frames=10, model_label=0)]
        with pytest.raises(ValueError):
            VideoManifest(video_name="v", width=64, height=48, fps=30.0,
                          crf=51, segments=segments, model_sizes={0: 10})


class TestModelCache:
    def test_fetch_once_per_label(self):
        fetched = []
        cache = ModelCache(fetch=lambda lab: fetched.append(lab) or lab)
        for lab in [0, 1, 1, 2, 2, 2, 3]:
            cache.get(lab)
        assert fetched == [0, 1, 2, 3]
        assert cache.stats.downloads == 4
        assert cache.stats.hits == 3

    def test_contains_and_len(self):
        cache = ModelCache(fetch=lambda lab: lab)
        cache.get(5)
        assert 5 in cache
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = ModelCache(fetch=lambda lab: lab)
        for lab in [0, 0, 0, 0]:
            cache.get(lab)
        assert cache.stats.hit_rate == 0.75

    def test_lru_eviction(self):
        cache = ModelCache(fetch=lambda lab: lab, capacity=2)
        cache.get(0)
        cache.get(1)
        cache.get(2)          # evicts 0
        assert 0 not in cache
        assert cache.stats.evictions == 1
        cache.get(0)          # re-download
        assert cache.stats.downloads == 4

    def test_lru_recency_order(self):
        cache = ModelCache(fetch=lambda lab: lab, capacity=2)
        cache.get(0)
        cache.get(1)
        cache.get(0)          # 0 becomes most recent
        cache.get(2)          # evicts 1, not 0
        assert 0 in cache and 1 not in cache

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ModelCache(fetch=lambda lab: lab, capacity=0)

    def test_clear(self):
        cache = ModelCache(fetch=lambda lab: lab)
        cache.get(1)
        cache.clear()
        assert 1 not in cache


class TestFigure7Walkthrough:
    def test_paper_example(self):
        """Labels 0112223 download exactly at segments 0, 1, 3, 6."""
        flags, stats = simulate_caching([0, 1, 1, 2, 2, 2, 3])
        assert flags == [True, True, False, True, False, False, True]
        assert stats.downloads == 4
        assert stats.downloaded_labels == [0, 1, 2, 3]

    def test_all_same_label(self):
        flags, stats = simulate_caching([0] * 10)
        assert stats.downloads == 1
        assert flags[0] and not any(flags[1:])

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_downloads_equal_distinct_labels(self, labels):
        """Unbounded cache: downloads == number of distinct labels."""
        _, stats = simulate_caching(labels)
        assert stats.downloads == len(set(labels))

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40),
           st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_cache_at_least_distinct(self, labels, capacity):
        """Bounded cache can only download more, never less."""
        _, stats = simulate_caching(labels, capacity=capacity)
        assert stats.downloads >= len(set(labels))
        assert stats.downloads <= len(labels)
