"""Tests for package persistence (save/load round trip)."""

import json

import numpy as np
import pytest

from repro.core import DcsrClient, load_package, save_package


class TestPersistence:
    def test_roundtrip_layout(self, package, tmp_path):
        root = save_package(package, tmp_path / "pkg")
        assert (root / "manifest.json").exists()
        n_segments = package.manifest.n_segments
        assert len(list((root / "segments").glob("*.bin"))) == n_segments
        assert len(list((root / "models").glob("*.npz"))) == package.n_models

    def test_loaded_manifest_matches(self, package, tmp_path):
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        assert loaded.manifest.label_sequence() == package.manifest.label_sequence()
        assert loaded.manifest.model_sizes == package.manifest.model_sizes
        assert loaded.manifest.n_frames == package.manifest.n_frames

    def test_loaded_bitstreams_identical(self, package, tmp_path):
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        for a, b in zip(package.encoded.segments, loaded.encoded.segments):
            assert a.payload == b.payload

    def test_loaded_models_bitexact(self, package, tmp_path):
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        x = np.random.default_rng(0).uniform(
            size=(1, 3, 16, 16)).astype(np.float32)
        for label, model in package.models.items():
            np.testing.assert_array_equal(model.forward(x),
                                          loaded.models[label].forward(x))

    def test_playback_identical_after_reload(self, package, small_clip, tmp_path):
        """A client playing the reloaded package produces identical frames."""
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        original = DcsrClient(package).play(small_clip.frames)
        reloaded = DcsrClient(loaded).play(small_clip.frames)
        assert np.isclose(original.mean_psnr, reloaded.mean_psnr)
        for a, b in zip(original.frames, reloaded.frames):
            np.testing.assert_array_equal(a, b)
        assert original.model_bytes == reloaded.model_bytes

    def test_quantization_block_roundtrips(self, package, tmp_path):
        """The calibration records (per-label, per-precision sizes and
        PSNR deltas) survive save/load — clients trust the reloaded
        manifest for byte accounting and budget display."""
        assert package.manifest.quantization, "build should have calibrated"
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        assert set(loaded.manifest.quantization) == \
            set(package.manifest.quantization)
        for label, per_precision in package.manifest.quantization.items():
            reloaded = loaded.manifest.quantization[label]
            assert set(reloaded) == set(per_precision)
            for precision, record in per_precision.items():
                assert reloaded[precision].size_bytes == record.size_bytes
                assert reloaded[precision].delta_db == record.delta_db
        for label in package.manifest.model_sizes:
            for precision in ("fp32", "int8"):
                assert loaded.manifest.model_size_for(label, precision) == \
                    package.manifest.model_size_for(label, precision)

    def test_legacy_package_without_quantization_loads(self, package,
                                                       tmp_path):
        """Packages written before the quantize stage have no block in
        the manifest; loading must default to empty, not fail."""
        root = save_package(package, tmp_path / "pkg")
        meta = json.loads((root / "manifest.json").read_text())
        meta.pop("quantization", None)
        (root / "manifest.json").write_text(json.dumps(meta))
        loaded = load_package(root)
        assert loaded.manifest.quantization == {}
        # Byte accounting falls back to the fp32 size for every precision.
        label = next(iter(loaded.manifest.model_sizes))
        assert loaded.manifest.model_size_for(label, "int8") == \
            loaded.manifest.model_sizes[label]

    def test_frame_info_roundtrips(self, package, tmp_path):
        """Per-frame metadata (display/type/bits) survives save/load —
        a loaded package keeps i_frame_displays and bits_by_type, and
        the fleet's trace mode can count I frames for SR demand."""
        save_package(package, tmp_path / "pkg")
        loaded = load_package(tmp_path / "pkg")
        for a, b in zip(package.encoded.segments, loaded.encoded.segments):
            assert [(f.display, f.ftype, f.n_bits) for f in a.frames] == \
                [(f.display, f.ftype, f.n_bits) for f in b.frames]
            assert a.i_frame_displays == b.i_frame_displays
            assert b.i_frame_displays      # at least the closed-GOP opener
        assert loaded.encoded.bits_by_type() == package.encoded.bits_by_type()

    def test_legacy_package_without_frame_info_loads(self, package,
                                                     tmp_path):
        """Packages written before frame_info was persisted load with
        empty frame lists, as before — not a failure."""
        root = save_package(package, tmp_path / "pkg")
        meta = json.loads((root / "manifest.json").read_text())
        meta.pop("frame_info", None)
        (root / "manifest.json").write_text(json.dumps(meta))
        loaded = load_package(root)
        assert all(seg.frames == [] for seg in loaded.encoded.segments)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_package(tmp_path / "nope")

    def test_bad_version_raises(self, package, tmp_path):
        root = save_package(package, tmp_path / "pkg")
        meta = json.loads((root / "manifest.json").read_text())
        meta["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_package(root)
