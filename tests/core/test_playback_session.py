"""The streaming session engine: fault injection, telemetry, and the
bounded-memory generator contract.

Complements ``test_failure_injection.py`` (which checks that raw
components fail loudly): here the *client* is expected to degrade
gracefully — conceal corrupt segments, fall back when a model cannot be
fetched, retry transient download failures — while keeping exact byte and
telemetry accounting.
"""

import numpy as np
import pytest

from repro.core import (
    PLAYBACK_STAGES,
    DcsrClient,
    DownloadError,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
    download_with_retry,
)
from repro.core.persist import StoredPackage
from repro.video.codec import (
    Decoder,
    EncodedSegment,
    EncodedVideo,
    SegmentMetadataError,
    TruncatedStreamError,
)


def _clone_package_with(package, *, segments=None, models=None):
    return StoredPackage(
        manifest=package.manifest,
        encoded=package.encoded if segments is None else segments,
        models=models if models is not None else package.models,
        segments=package.segments,
    )


def _with_truncated_segment(package, which: int):
    """A copy of the package whose ``which``-th segment payload is cut."""
    encoded = EncodedVideo(width=package.encoded.width,
                           height=package.encoded.height,
                           fps=package.encoded.fps,
                           config=package.encoded.config)
    for seg in package.encoded.segments:
        if seg.index == which:
            seg = EncodedSegment(index=seg.index, start=seg.start,
                                 n_frames=seg.n_frames,
                                 payload=seg.payload[: len(seg.payload) // 3],
                                 frames=seg.frames)
        encoded.segments.append(seg)
    return _clone_package_with(package, segments=encoded)


class TestSimulatedNetwork:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(fail_rate=1.5)
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_bps=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency_s=-1)

    def test_transfer_time_from_bandwidth_and_latency(self):
        net = SimulatedNetwork(NetworkConfig(bandwidth_bps=8e6, latency_s=0.1))
        # 1 MB over 8 Mbit/s = 1 s, plus the RTT.
        assert np.isclose(net.download("segment", 0, 1_000_000), 1.1)
        assert net.stats.bytes_delivered == 1_000_000

    def test_schedule_drives_failures_deterministically(self):
        net = SimulatedNetwork(failure_schedule=[True, False, True])
        with pytest.raises(DownloadError):
            net.download("segment", 0, 10)
        assert net.download("segment", 0, 10) == 0.0
        with pytest.raises(DownloadError):
            net.download("model", 1, 10)
        assert net.stats.attempts == 3
        assert net.stats.failures == 2

    def test_retry_succeeds_within_budget(self):
        net = SimulatedNetwork(NetworkConfig(latency_s=0.2),
                               failure_schedule=[True, True, False])
        retry = RetryPolicy(retries=2, backoff_s=0.1, backoff_factor=2.0)
        seconds, attempts = download_with_retry(net, retry, "segment", 0, 0)
        assert attempts == 3
        # Two failed attempts + backoffs (0.1, 0.2) + the success.
        assert np.isclose(seconds, 3 * 0.2 + 0.1 + 0.2)

    def test_retry_budget_exhausted_carries_accounting(self):
        net = SimulatedNetwork(failure_schedule=[True] * 3)
        with pytest.raises(DownloadError) as info:
            download_with_retry(net, RetryPolicy(retries=2, backoff_s=0.0),
                                "segment", 5, 10)
        assert info.value.attempts == 3

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestTypedDecodeErrors:
    def test_truncated_payload_is_typed_and_backwards_compatible(self, package):
        broken = _with_truncated_segment(package, 0)
        seg = broken.encoded.segments[0]
        with pytest.raises(TruncatedStreamError) as info:
            Decoder().decode_segment(seg, package.encoded.width,
                                     package.encoded.height)
        assert isinstance(info.value, ValueError)   # old contract
        assert isinstance(info.value, EOFError)     # old contract

    def test_metadata_mismatch_is_typed(self, package):
        seg = package.encoded.segments[0]
        broken = EncodedSegment(index=seg.index, start=seg.start,
                                n_frames=seg.n_frames + 3,
                                payload=seg.payload, frames=seg.frames)
        with pytest.raises(SegmentMetadataError):
            Decoder().decode_segment(broken, package.encoded.width,
                                     package.encoded.height)


class TestDecoderReuse:
    def test_hook_count_resets_per_segment(self, package):
        """Regression: one decoder reused across segments must not
        accumulate hook counts from prior calls."""
        calls = []
        decoder = Decoder(i_frame_hook=lambda f, d: calls.append(d) or f)
        seg = package.encoded.segments[0]
        decoder.decode_segment(seg, package.encoded.width,
                               package.encoded.height)
        first = decoder.hook_invocations
        assert first >= 1
        decoder.decode_segment(seg, package.encoded.width,
                               package.encoded.height)
        assert decoder.hook_invocations == first  # not 2 * first

    def test_decode_video_still_counts_all_segments(self, package):
        decoder = Decoder(i_frame_hook=lambda f, d: f)
        decoded = decoder.decode_video(package.encoded)
        n_i = sum(1 for t in decoded.frame_types if t == "I")
        assert decoded.hook_invocations == n_i


class TestGeneratorContract:
    def test_iter_frames_matches_play(self, package, small_clip):
        played = DcsrClient(package).play(small_clip.frames)
        streamed = DcsrClient(package)
        frames = [f for f in streamed.iter_frames(small_clip.frames)]
        result = streamed.last_result

        assert [f.display for f in frames] == list(range(small_clip.n_frames))
        for a, b in zip(played.frames, frames):
            np.testing.assert_array_equal(a, b.rgb)
        # Satellite invariant: byte accounting identical across entry points.
        assert result.video_bytes == played.video_bytes
        assert result.model_bytes == played.model_bytes
        assert result.frame_types == played.frame_types
        assert result.psnr_per_frame == played.psnr_per_frame
        assert result.sr_inferences == played.sr_inferences

    def test_play_result_carries_telemetry(self, package, small_clip):
        result = DcsrClient(package).play(small_clip.frames)
        telemetry = result.telemetry
        assert telemetry is not None
        assert set(telemetry.stage_seconds) <= set(PLAYBACK_STAGES)
        assert telemetry.native_fps == package.encoded.fps
        assert telemetry.achieved_fps > 0
        assert len(telemetry.segments) == len(package.segments)
        # Stage totals are exactly the per-segment sums.
        for name in telemetry.stage_seconds:
            assert np.isclose(
                telemetry.stage_seconds[name],
                sum(getattr(s, f"{name}_s") for s in telemetry.segments))
        assert telemetry.cache_hit_rate == result.cache_stats.hit_rate
        assert any(line.startswith("playback stages")
                   for line in telemetry.summary_lines())

    def test_peak_residency_is_one_segment(self, package, small_clip):
        client = DcsrClient(package)
        for _ in client.iter_frames():
            pass
        peak = client.last_result.telemetry.peak_resident_frames
        longest = max(seg.n_frames for seg in package.segments)
        assert 0 < peak <= longest + 1      # one segment + the held frame
        assert peak < small_clip.n_frames   # never the whole video

    def test_abandoned_generator_still_finalizes(self, package):
        client = DcsrClient(package)
        gen = client.iter_frames()
        next(gen)
        gen.close()
        assert client.last_result.telemetry is not None
        assert client.last_result.model_bytes > 0


class TestConcealment:
    def test_corrupt_midstream_segment_is_concealed(self, package, small_clip):
        which = package.encoded.segments[1].index
        broken = _with_truncated_segment(package, which)
        result = DcsrClient(broken).play(small_clip.frames)

        assert result.skipped_segments == [which]
        assert len(result.frames) == small_clip.n_frames
        seg = package.segments[1]
        # Concealed displays hold the last good frame and are typed "C".
        last_good = result.frames[seg.start - 1]
        for display in range(seg.start, seg.end):
            assert result.frame_types[display] == "C"
            np.testing.assert_array_equal(result.frames[display], last_good)
        telemetry = result.telemetry
        assert telemetry.n_concealed == 1
        assert telemetry.segments[1].status == "concealed"

    def test_corrupt_first_segment_shows_black(self, package):
        which = package.encoded.segments[0].index
        broken = _with_truncated_segment(package, which)
        result = DcsrClient(broken).play()
        seg = package.segments[0]
        assert result.skipped_segments == [which]
        assert not result.frames[seg.start].any()

    def test_concealed_bytes_not_counted(self, package):
        which = package.encoded.segments[1].index
        broken = _with_truncated_segment(package, which)
        result = DcsrClient(broken).play()
        # The truncated payload still downloads (bytes on the wire), but
        # comparing against the intact package shows only the cut bytes.
        intact = DcsrClient(package).play()
        lost = (package.encoded.segments[1].n_bytes
                - broken.encoded.segments[1].n_bytes)
        assert result.video_bytes == intact.video_bytes - lost

    def test_download_failure_after_retries_conceals(self, package, small_clip):
        # Attempt order for segment 0: model 0 (ok), then the segment
        # download, which fails through its whole retry budget.
        net = SimulatedNetwork(failure_schedule=[False, True, True])
        client = DcsrClient(package, network=net,
                            retry=RetryPolicy(retries=1, backoff_s=0.05))
        result = client.play(small_clip.frames)
        first = package.segments[0]
        assert result.skipped_segments == [first.index]
        assert len(result.frames) == small_clip.n_frames
        assert result.telemetry.segments[0].download_attempts >= 3
        # Failed attempts and backoff cost simulated stall time.
        assert result.telemetry.segments[0].download_s > 0


class TestRetries:
    def test_transient_failures_recovered_by_retry(self, package, small_clip):
        # First two attempts fail (model 0, then its retry); budget of 2
        # retries absorbs both, so playback is byte-identical to clean.
        net = SimulatedNetwork(failure_schedule=[True, True])
        client = DcsrClient(package, network=net,
                            retry=RetryPolicy(retries=2, backoff_s=0.01))
        result = client.play(small_clip.frames)
        clean = DcsrClient(package).play(small_clip.frames)

        assert result.skipped_segments == []
        assert result.fallback_segments == []
        for a, b in zip(result.frames, clean.frames):
            np.testing.assert_array_equal(a, b)
        assert result.video_bytes == clean.video_bytes
        assert result.model_bytes == clean.model_bytes
        assert net.stats.failures == 2
        assert result.telemetry.download_attempts == net.stats.attempts

    def test_fail_rate_session_completes_with_degradation_records(
            self, package, small_clip):
        """The acceptance path: heavy injected loss + retries completes
        and reports what was degraded instead of raising."""
        net = SimulatedNetwork(NetworkConfig(fail_rate=0.8, seed=11))
        client = DcsrClient(package, network=net,
                            retry=RetryPolicy(retries=0, backoff_s=0.0),
                            fallback=True)
        result = client.play(small_clip.frames)
        assert len(result.frames) == small_clip.n_frames
        assert result.skipped_segments or result.fallback_segments
        statuses = {s.status for s in result.telemetry.segments}
        assert statuses & {"concealed", "fallback"}


class TestModelFallback:
    def test_missing_model_falls_back_to_passthrough(self, package, small_clip):
        models = dict(package.models)
        label = package.manifest.model_label_for(package.segments[0].index)
        del models[label]
        broken = _clone_package_with(package, models=models)

        result = DcsrClient(broken, fallback=True).play(small_clip.frames)
        expected_fallbacks = [s.index for s in package.segments
                              if package.manifest.model_label_for(s.index)
                              == label]
        assert result.fallback_segments == expected_fallbacks
        assert len(result.frames) == small_clip.n_frames
        # No model bytes are charged for the missing label.
        charged = sum(package.manifest.model_sizes[l]
                      for l in result.model_downloads)
        assert result.model_bytes == charged
        assert label not in result.model_downloads

    def test_fallback_segments_match_plain_decode(self, package, small_clip):
        """A passthrough-enhanced segment is the plain decode of that
        segment: no enhancement, no crash."""
        from repro.core import play_low
        models = dict(package.models)
        label = package.manifest.model_label_for(package.segments[0].index)
        del models[label]
        broken = _clone_package_with(package, models=models)
        result = DcsrClient(broken, fallback=True).play(small_clip.frames)
        low = play_low(package, small_clip.frames)
        seg = package.segments[0]
        for display in range(seg.start, seg.end):
            np.testing.assert_array_equal(result.frames[display],
                                          low.frames[display])

    def test_strict_mode_still_raises(self, package):
        models = dict(package.models)
        del models[next(iter(models))]
        broken = _clone_package_with(package, models=models)
        with pytest.raises(KeyError):
            DcsrClient(broken).play()

    def test_model_download_failure_with_fallback(self, package, small_clip):
        # Model 0's download fails through the whole budget -> fallback;
        # everything after succeeds (schedule exhausted, fail_rate 0).
        net = SimulatedNetwork(failure_schedule=[True, True])
        client = DcsrClient(package, network=net,
                            retry=RetryPolicy(retries=1, backoff_s=0.0),
                            fallback=True)
        result = client.play(small_clip.frames)
        assert result.fallback_segments[:1] == [package.segments[0].index]
        assert len(result.frames) == small_clip.n_frames
        # The label was never cached, so a later segment with the same
        # label re-attempts the download (and succeeds).
        assert result.cache_stats.failed_fetches == 1


class TestDoubleFault:
    def test_concealment_supersedes_fallback(self, package, small_clip):
        """A segment whose model fetch AND payload download both fail is
        concealed only — the degradation lists stay disjoint."""
        # Segment 0: model download fails (2 attempts), then the segment
        # download fails too (2 attempts). Everything after succeeds.
        net = SimulatedNetwork(failure_schedule=[True] * 4)
        client = DcsrClient(package, network=net,
                            retry=RetryPolicy(retries=1, backoff_s=0.0),
                            fallback=True)
        result = client.play(small_clip.frames)
        first = package.segments[0].index
        assert first in result.skipped_segments
        assert first not in result.fallback_segments
        assert not (set(result.skipped_segments)
                    & set(result.fallback_segments))
        assert result.telemetry.segments[0].status == "concealed"
        assert result.telemetry.n_concealed == len(result.skipped_segments)
        assert result.telemetry.n_fallback == len(result.fallback_segments)


class TestSessionMetrics:
    def test_stall_ratio_zero_on_clean_session(self, package):
        from repro.core import stall_ratio
        result = DcsrClient(package).play()
        ratio = stall_ratio(result.telemetry)
        assert 0.0 <= ratio < 1.0

    def test_stall_ratio_grows_with_injected_latency(self, package):
        from repro.core import stall_ratio
        slow = SimulatedNetwork(NetworkConfig(latency_s=5.0))
        stalled = DcsrClient(package, network=slow).play()
        clean = DcsrClient(package).play()
        assert stall_ratio(stalled.telemetry) > stall_ratio(clean.telemetry)
        assert stall_ratio(stalled.telemetry) <= 1.0

    def test_goodput_drops_under_injected_loss(self, package):
        """Failed attempts burn latency without delivering bytes, so the
        lossy link's goodput lands strictly below the clean link's."""
        from repro.core import session_goodput_bps
        bw, rtt = 10e6, 0.05
        clean_net = SimulatedNetwork(
            NetworkConfig(bandwidth_bps=bw, latency_s=rtt))
        clean = DcsrClient(package, network=clean_net).play()
        lossy_net = SimulatedNetwork(
            NetworkConfig(fail_rate=0.5, bandwidth_bps=bw, latency_s=rtt,
                          seed=3))
        lossy = DcsrClient(package, network=lossy_net,
                           retry=RetryPolicy(retries=5, backoff_s=0.0),
                           fallback=True).play()
        assert lossy_net.stats.failures > 0
        assert session_goodput_bps(clean) < bw  # latency always costs
        assert session_goodput_bps(lossy) < session_goodput_bps(clean)

    def test_goodput_requires_telemetry(self, package):
        from repro.core import PlaybackResult, session_goodput_bps
        with pytest.raises(ValueError):
            session_goodput_bps(PlaybackResult())
