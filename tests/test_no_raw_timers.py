"""Static guard: all timing flows through ``repro.obs.clock``.

Any ``time.perf_counter()`` / ``time.monotonic()`` call (or ``time``
import) outside ``obs/clock.py`` bypasses the injectable clock, which
breaks trace/telemetry matching and silently mixes wall and simulated
seconds. This test greps the source tree so the invariant cannot rot.

Docstrings and comments may *mention* timer names; only real imports and
call sites are flagged, so the scan strips those first.
"""

import ast
import re
from pathlib import Path

SRC = Path(__file__).parent.parent / "src" / "repro"
ALLOWED = {SRC / "obs" / "clock.py"}

TIMER_CALL = re.compile(
    r"\btime\.(?:perf_counter|monotonic|time|process_time|sleep)\s*\(")
TIME_IMPORT = re.compile(r"^\s*(?:import\s+time\b|from\s+time\s+import\b)")


def code_lines(path):
    """Yield (lineno, line) with comments and docstrings removed."""
    text = path.read_text()
    doc_lines = set()
    for node in ast.walk(ast.parse(text)):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            doc_lines.update(range(node.lineno, node.end_lineno + 1))
    for lineno, line in enumerate(text.splitlines(), start=1):
        if lineno not in doc_lines:
            yield lineno, line.split("#", 1)[0]


def scan(path):
    hits = []
    for lineno, line in code_lines(path):
        if TIMER_CALL.search(line) or TIME_IMPORT.search(line):
            hits.append(f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{line.strip()}")
    return hits


def test_source_tree_exists():
    assert SRC.is_dir()
    assert any(SRC.rglob("*.py"))


def test_no_raw_timers_outside_the_clock_module():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        offenders.extend(scan(path))
    assert not offenders, (
        "raw timer usage outside repro/obs/clock.py — route it through an "
        "injectable Clock instead:\n" + "\n".join(offenders))


def test_the_clock_module_itself_uses_the_timer():
    """Sanity-check the scanner: clock.py must trip it, proving the
    regexes actually detect the pattern they guard against."""
    assert scan(SRC / "obs" / "clock.py")
