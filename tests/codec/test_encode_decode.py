"""End-to-end codec tests: round trips, rate-distortion, GOP semantics, and
the I-frame enhancement hook."""

import numpy as np
import pytest

from repro.video import (
    Segment,
    YuvFrame,
    detect_segments,
    fixed_length_segments,
    make_video,
    psnr_yuv,
    rgb_to_yuv420,
)
from repro.video.codec import CodecConfig, DecodedVideo, Decoder, Encoder


def _clip(duration=2.0, genre="sports", seed=1, size=(32, 48), fps=10):
    return make_video("t", genre, seed=seed, size=size,
                      duration_seconds=duration, fps=fps)


def _encode(clip, crf=30, **kwargs):
    segs = detect_segments(clip.frames)
    return Encoder(CodecConfig(crf=crf, **kwargs)).encode(
        clip.frames, segs, fps=clip.fps)


class TestRoundTrip:
    def test_frame_count_preserved(self):
        clip = _clip()
        decoded = Decoder().decode_video(_encode(clip))
        assert decoded.n_frames == clip.n_frames

    def test_deterministic_decode(self):
        clip = _clip()
        encoded = _encode(clip)
        a = Decoder().decode_video(encoded)
        b = Decoder().decode_video(encoded)
        assert all(x == y for x, y in zip(a.frames, b.frames))

    def test_quality_reasonable_at_low_crf(self):
        clip = _clip()
        decoded = Decoder().decode_video(_encode(clip, crf=10))
        orig = [rgb_to_yuv420(f) for f in clip.frames]
        vals = [psnr_yuv(a, b) for a, b in zip(orig, decoded.frames)]
        assert min(vals) > 35.0

    def test_rate_distortion_monotone(self):
        clip = _clip()
        orig = [rgb_to_yuv420(f) for f in clip.frames]
        sizes, quals = [], []
        for crf in (10, 30, 45):
            encoded = _encode(clip, crf=crf)
            decoded = Decoder().decode_video(encoded)
            sizes.append(encoded.total_bytes)
            quals.append(np.mean([psnr_yuv(a, b)
                                  for a, b in zip(orig, decoded.frames)]))
        assert sizes[0] > sizes[1] > sizes[2]
        assert quals[0] > quals[1] > quals[2]

    def test_crf51_is_heavily_compressed(self):
        clip = _clip()
        raw_bytes = clip.n_frames * rgb_to_yuv420(clip.frames[0]).nbytes()
        encoded = _encode(clip, crf=51)
        assert encoded.total_bytes < raw_bytes / 20

    def test_first_frame_of_each_segment_is_i(self):
        clip = _clip(duration=6.0, genre="music", seed=7)
        segs = detect_segments(clip.frames)
        encoded = Encoder(CodecConfig(crf=30)).encode(clip.frames, segs,
                                                      fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        for seg in segs:
            assert decoded.frame_types[seg.start] == "I"

    def test_fixed_length_segmentation(self):
        clip = _clip()
        segs = fixed_length_segments(clip.n_frames, 8)
        encoded = Encoder(CodecConfig(crf=30)).encode(clip.frames, segs,
                                                      fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        assert decoded.n_frames == clip.n_frames
        assert len(decoded.i_frame_indices) == len(segs)


class TestValidation:
    def test_bad_segment_tiling(self):
        clip = _clip()
        bad = [Segment(0, 0, clip.n_frames - 1)]
        with pytest.raises(ValueError):
            Encoder().encode(clip.frames, bad)

    def test_overlapping_segments(self):
        clip = _clip()
        bad = [Segment(0, 0, 12), Segment(1, 10, clip.n_frames)]
        with pytest.raises(ValueError):
            Encoder().encode(clip.frames, bad)

    def test_unaligned_frames(self):
        frames = np.zeros((4, 30, 48, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            Encoder().encode(frames, [Segment(0, 0, 4)])

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            Encoder().encode(np.zeros((4, 32, 48), np.float32),
                             [Segment(0, 0, 4)])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CodecConfig(crf=99)
        with pytest.raises(ValueError):
            CodecConfig(n_b_frames=-1)
        with pytest.raises(ValueError):
            CodecConfig(search_range=0)

    def test_corrupt_payload_raises(self):
        clip = _clip()
        encoded = _encode(clip)
        seg = encoded.segments[0]
        seg_bad = type(seg)(index=seg.index, start=seg.start,
                            n_frames=seg.n_frames,
                            payload=seg.payload[:8], frames=seg.frames)
        with pytest.raises((ValueError, EOFError)):
            Decoder().decode_segment(seg_bad, encoded.width, encoded.height)


class TestBitAccounting:
    def test_frame_bits_sum_close_to_payload(self):
        clip = _clip()
        encoded = _encode(clip)
        for seg in encoded.segments:
            frame_bits = sum(f.n_bits for f in seg.frames)
            # Payload adds only the small segment header + byte padding.
            assert 0 <= seg.n_bytes * 8 - frame_bits < 64

    def test_i_frames_cost_more_per_frame(self):
        """The paper's premise: I frames carry most of the bitrate."""
        clip = _clip(duration=3.0)
        encoded = _encode(clip, crf=35)
        per_type: dict[str, list[int]] = {"I": [], "P": [], "B": []}
        for seg in encoded.segments:
            for info in seg.frames:
                per_type[info.ftype].append(info.n_bits)
        assert np.mean(per_type["I"]) > np.mean(per_type["P"])
        assert np.mean(per_type["I"]) > np.mean(per_type["B"])

    def test_bits_by_type_totals(self):
        clip = _clip()
        encoded = _encode(clip)
        totals = encoded.bits_by_type()
        frame_total = sum(
            f.n_bits for s in encoded.segments for f in s.frames)
        assert sum(totals.values()) == frame_total

    def test_b_frames_present_when_requested(self):
        clip = _clip()
        encoded = _encode(clip, n_b_frames=2)
        assert "B" in encoded.frame_types()
        encoded_nob = _encode(clip, n_b_frames=0)
        assert "B" not in encoded_nob.frame_types()


class TestExtraIFrames:
    def test_extra_i_interval_increases_i_count(self):
        clip = _clip(duration=3.0)
        segs = [Segment(0, 0, clip.n_frames)]
        base = Encoder(CodecConfig(crf=30)).encode(clip.frames, segs)
        extra = Encoder(CodecConfig(crf=30, extra_i_interval=6)).encode(
            clip.frames, segs)
        n_i_base = base.frame_types().count("I")
        n_i_extra = extra.frame_types().count("I")
        assert n_i_extra > n_i_base


class TestIFrameHook:
    def test_hook_called_once_per_i_frame(self):
        clip = _clip(duration=5.0, genre="music", seed=7)
        encoded = _encode(clip)
        calls = []

        def hook(frame, display):
            calls.append(display)
            return frame

        decoded = Decoder(i_frame_hook=hook).decode_video(encoded)
        assert sorted(calls) == decoded.i_frame_indices
        assert decoded.hook_invocations == len(calls)

    def test_identity_hook_changes_nothing(self):
        clip = _clip()
        encoded = _encode(clip)
        plain = Decoder().decode_video(encoded)
        hooked = Decoder(i_frame_hook=lambda f, i: f).decode_video(encoded)
        assert all(a == b for a, b in zip(plain.frames, hooked.frames))

    def test_hook_enhancement_propagates_to_p_and_b(self):
        """Brightening the I frame must brighten dependent P/B frames."""
        clip = _clip(duration=2.0)
        encoded = _encode(clip, crf=40)

        def brighten(frame, display):
            return YuvFrame(
                np.clip(frame.y.astype(np.int16) + 40, 0, 255).astype(np.uint8),
                frame.u, frame.v)

        plain = Decoder().decode_video(encoded)
        hooked = Decoder(i_frame_hook=brighten).decode_video(encoded)
        for ftype, a, b in zip(plain.frame_types, plain.frames, hooked.frames):
            delta = float(b.y.astype(np.int64).mean() - a.y.astype(np.int64).mean())
            assert delta > 15.0, f"{ftype} frame did not inherit enhancement"

    def test_hook_must_preserve_size(self):
        clip = _clip()
        encoded = _encode(clip)

        def grow(frame, display):
            big = np.repeat(np.repeat(frame.y, 2, 0), 2, 1)
            return YuvFrame(big, np.repeat(np.repeat(frame.u, 2, 0), 2, 1),
                            np.repeat(np.repeat(frame.v, 2, 0), 2, 1))

        with pytest.raises(ValueError):
            Decoder(i_frame_hook=grow).decode_video(encoded)

    def test_hook_must_return_yuv(self):
        clip = _clip()
        encoded = _encode(clip)
        with pytest.raises(TypeError):
            Decoder(i_frame_hook=lambda f, i: f.y).decode_video(encoded)


class TestSegmentDecodeIsolation:
    def test_segments_independently_decodable(self):
        """Closed GOPs: any segment decodes without the others."""
        clip = _clip(duration=6.0, genre="music", seed=7)
        encoded = _encode(clip)
        assert len(encoded.segments) > 1
        seg = encoded.segments[-1]
        frames = Decoder().decode_segment(seg, encoded.width, encoded.height)
        assert len(frames) == seg.n_frames
        displays = sorted(f.display for f in frames)
        assert displays == list(range(seg.start, seg.start + seg.n_frames))


class TestDisplayOnlyHook:
    def test_display_only_does_not_propagate(self):
        """With hook_display_only, P/B frames match the plain decode while
        I frames still show the enhancement."""
        clip = _clip(duration=2.0)
        encoded = _encode(clip, crf=45)

        def brighten(frame, display):
            return YuvFrame(
                np.clip(frame.y.astype(np.int16) + 40, 0, 255).astype(np.uint8),
                frame.u, frame.v)

        plain = Decoder().decode_video(encoded)
        display_only = Decoder(i_frame_hook=brighten,
                               hook_display_only=True).decode_video(encoded)
        for ftype, a, b in zip(plain.frame_types, plain.frames,
                               display_only.frames):
            if ftype == "I":
                assert a != b
            else:
                assert a == b
