"""Tests for the in-loop deblocking filter."""

import numpy as np
import pytest

from repro.video import detect_segments, make_video, psnr_yuv, rgb_to_yuv420
from repro.video.codec import CodecConfig, Decoder, Encoder
from repro.video.codec.deblock import deblock_plane, deblock_strength


class TestDeblockPlane:
    def test_requires_uint8(self):
        with pytest.raises(ValueError):
            deblock_plane(np.zeros((16, 16), np.float32), 30)

    def test_flat_plane_unchanged(self):
        plane = np.full((16, 16), 100, dtype=np.uint8)
        np.testing.assert_array_equal(deblock_plane(plane, 40), plane)

    def test_smooths_blocking_step(self):
        """A small step at a block boundary shrinks."""
        plane = np.full((16, 16), 100, dtype=np.uint8)
        plane[:, 8:] = 108  # step at the 8-pixel boundary
        out = deblock_plane(plane, 40).astype(np.int64)
        boundary_step = abs(int(out[4, 8]) - int(out[4, 7]))
        assert boundary_step < 8

    def test_preserves_strong_edges(self):
        """A large step (a real image edge) survives the filter."""
        plane = np.full((16, 16), 30, dtype=np.uint8)
        plane[:, 8:] = 220
        out = deblock_plane(plane, 40).astype(np.int64)
        boundary_step = int(out[4, 8]) - int(out[4, 7])
        assert boundary_step > 150

    def test_low_qp_filters_gently(self):
        """Threshold shrinks with QP: at high quality nothing changes."""
        plane = np.full((16, 16), 100, dtype=np.uint8)
        plane[:, 8:] = 108
        gentle = deblock_plane(plane, 0).astype(np.int64)
        strong = deblock_plane(plane, 48).astype(np.int64)
        step_gentle = abs(int(gentle[4, 8]) - int(gentle[4, 7]))
        step_strong = abs(int(strong[4, 8]) - int(strong[4, 7]))
        assert step_strong <= step_gentle

    def test_strength_monotone_in_qp(self):
        alphas = [deblock_strength(qp)[0] for qp in (0, 20, 40, 51)]
        assert all(a < b for a, b in zip(alphas[:-1], alphas[1:]))

    def test_horizontal_boundaries_filtered_too(self):
        plane = np.full((16, 16), 100, dtype=np.uint8)
        plane[8:, :] = 108
        out = deblock_plane(plane, 40).astype(np.int64)
        assert abs(int(out[8, 4]) - int(out[7, 4])) < 8

    def test_output_dtype_and_shape(self):
        plane = np.random.default_rng(0).integers(
            0, 255, size=(24, 32)).astype(np.uint8)
        out = deblock_plane(plane, 30)
        assert out.dtype == np.uint8
        assert out.shape == plane.shape


class TestDeblockInLoop:
    @pytest.fixture(scope="class")
    def clip(self):
        return make_video("db", "documentary", seed=5, size=(32, 48),
                          duration_seconds=2.0, fps=10)

    def test_improves_quality_at_high_crf(self, clip):
        segs = detect_segments(clip.frames)
        orig = [rgb_to_yuv420(f) for f in clip.frames]
        scores = {}
        for deblock in (False, True):
            # half_pel off isolates the filter's own contribution.
            enc = Encoder(CodecConfig(crf=50, deblock=deblock,
                                      half_pel=False)).encode(
                clip.frames, segs, fps=clip.fps)
            dec = Decoder().decode_video(enc)
            scores[deblock] = float(np.mean(
                [psnr_yuv(a, b) for a, b in zip(orig, dec.frames)]))
        assert scores[True] > scores[False] + 0.5

    def test_flag_travels_in_bitstream(self, clip):
        """The decoder learns the deblock setting from the stream itself."""
        segs = detect_segments(clip.frames)
        enc_on = Encoder(CodecConfig(crf=45, deblock=True)).encode(
            clip.frames, segs, fps=clip.fps)
        enc_off = Encoder(CodecConfig(crf=45, deblock=False)).encode(
            clip.frames, segs, fps=clip.fps)
        dec_on = Decoder().decode_video(enc_on)
        dec_off = Decoder().decode_video(enc_off)
        # Different reconstruction despite the same decoder instance type.
        assert any(a != b for a, b in zip(dec_on.frames, dec_off.frames))

    def test_encoder_decoder_stay_in_sync(self, clip):
        """With deblocked references, long P chains must not drift: decode
        twice and compare (closed loop implies determinism)."""
        segs = detect_segments(clip.frames)
        enc = Encoder(CodecConfig(crf=45, deblock=True, n_b_frames=0)).encode(
            clip.frames, segs, fps=clip.fps)
        a = Decoder().decode_video(enc)
        b = Decoder().decode_video(enc)
        assert all(x == y for x, y in zip(a.frames, b.frames))


class TestDeblockProperties:
    def test_idempotent_on_flat_regions(self):
        """Filtering an already-smooth plane twice equals filtering once."""
        from scipy.ndimage import gaussian_filter
        rng = np.random.default_rng(20)
        plane = gaussian_filter(rng.uniform(0, 255, size=(32, 32)), 3)
        plane = plane.astype(np.uint8)
        once = deblock_plane(plane, 30)
        twice = deblock_plane(once, 30)
        assert np.max(np.abs(once.astype(int) - twice.astype(int))) <= 2

    def test_bounded_correction(self):
        """No sample moves further than the filter's correction caps allow."""
        rng = np.random.default_rng(21)
        plane = rng.integers(0, 255, size=(32, 32)).astype(np.uint8)
        for qp in (10, 30, 50):
            out = deblock_plane(plane, qp)
            _, tc = deblock_strength(qp)
            max_move = np.max(np.abs(out.astype(int) - plane.astype(int)))
            # Each sample receives at most the edge correction plus the
            # second-tap correction from both the vertical and the
            # horizontal pass.
            assert max_move <= 2 * (tc + tc / 2) + 1

    def test_mean_preserving_on_interior(self):
        """The filter redistributes values across edges; the plane mean
        stays nearly constant."""
        rng = np.random.default_rng(22)
        plane = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        out = deblock_plane(plane, 40)
        assert abs(float(out.mean()) - float(plane.mean())) < 1.0
