"""Tests for target-size rate control."""

import numpy as np
import pytest

from repro.video import detect_segments, make_video
from repro.video.codec import (
    CodecConfig,
    Encoder,
    bitrate_of,
    encode_to_target_size,
)


@pytest.fixture(scope="module")
def content():
    clip = make_video("rc", "music", seed=9, size=(32, 48),
                      duration_seconds=3.0, fps=10)
    return clip, detect_segments(clip.frames)


class TestRateControl:
    def test_meets_budget_when_feasible(self, content):
        clip, segments = content
        # A budget comfortably above the CRF-51 floor.
        floor = Encoder(CodecConfig(crf=51)).encode(
            clip.frames, segments, fps=clip.fps).total_bytes
        target = floor * 4
        result = encode_to_target_size(clip.frames, segments, target,
                                       fps=clip.fps)
        assert result.achieved_bytes <= target
        assert result.utilisation <= 1.0

    def test_picks_best_quality_under_budget(self, content):
        clip, segments = content
        floor = Encoder(CodecConfig(crf=51)).encode(
            clip.frames, segments, fps=clip.fps).total_bytes
        result = encode_to_target_size(clip.frames, segments, floor * 4,
                                       fps=clip.fps)
        if result.crf > 0:
            better = Encoder(CodecConfig(crf=result.crf - 1)).encode(
                clip.frames, segments, fps=clip.fps)
            assert better.total_bytes > result.target_bytes

    def test_infeasible_budget_returns_max_crf(self, content):
        clip, segments = content
        result = encode_to_target_size(clip.frames, segments, 10,
                                       fps=clip.fps)
        assert result.crf == 51
        assert result.utilisation > 1.0

    def test_probe_count_bounded(self, content):
        clip, segments = content
        result = encode_to_target_size(clip.frames, segments, 50_000,
                                       fps=clip.fps)
        assert result.probes <= 7

    def test_validation(self, content):
        clip, segments = content
        with pytest.raises(ValueError):
            encode_to_target_size(clip.frames, segments, 0)
        with pytest.raises(ValueError):
            encode_to_target_size(clip.frames, segments, 100, min_crf=40,
                                  max_crf=30)

    def test_bitrate_of(self, content):
        clip, segments = content
        encoded = Encoder(CodecConfig(crf=40)).encode(clip.frames, segments,
                                                      fps=clip.fps)
        expected = 8.0 * encoded.total_bytes / (clip.n_frames / clip.fps)
        assert np.isclose(bitrate_of(encoded), expected)
