"""Tests for DCT, quantization, intra prediction, and motion estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.codec import (
    dct_matrix,
    forward_dct,
    from_blocks,
    inverse_dct,
    to_blocks,
    quantize,
    dequantize,
    qstep_from_qp,
    qp_from_crf,
    frequency_weights,
    motion_search,
    compensate,
    chroma_vector,
    plan_segment,
    count_types,
)
from repro.video.codec.intra import (
    MODE_DC,
    MODE_H,
    MODE_V,
    choose_mode,
    predict_block,
)


class TestDct:
    def test_matrix_orthonormal(self):
        d = dct_matrix(8)
        np.testing.assert_allclose(d @ d.T, np.eye(8), atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.uniform(-128, 128, size=(10, 8, 8))
        np.testing.assert_allclose(inverse_dct(forward_dct(blocks)), blocks,
                                   atol=1e-9)

    def test_dc_coefficient(self):
        block = np.full((8, 8), 16.0)
        coeffs = forward_dct(block)
        assert np.isclose(coeffs[0, 0], 16.0 * 8)  # orthonormal: mean * N
        assert np.allclose(coeffs.reshape(-1)[1:], 0.0, atol=1e-9)

    def test_energy_preservation(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(8, 8))
        coeffs = forward_dct(block)
        assert np.isclose(np.sum(block**2), np.sum(coeffs**2))

    def test_to_from_blocks_roundtrip(self):
        rng = np.random.default_rng(2)
        plane = rng.uniform(size=(24, 32))
        np.testing.assert_array_equal(from_blocks(to_blocks(plane)), plane)

    def test_to_blocks_bad_shape(self):
        with pytest.raises(ValueError):
            to_blocks(np.zeros((10, 16)))

    def test_to_blocks_layout(self):
        plane = np.arange(16 * 16).reshape(16, 16).astype(float)
        blocks = to_blocks(plane)
        np.testing.assert_array_equal(blocks[0, 1], plane[0:8, 8:16])
        np.testing.assert_array_equal(blocks[1, 0], plane[8:16, 0:8])


class TestQuant:
    def test_qstep_doubles_every_six(self):
        assert np.isclose(qstep_from_qp(16) / qstep_from_qp(10), 2.0)

    def test_qp_bounds(self):
        with pytest.raises(ValueError):
            qstep_from_qp(-1)
        with pytest.raises(ValueError):
            qstep_from_qp(52)

    def test_crf_mapping(self):
        assert qp_from_crf(0) == 0
        assert qp_from_crf(51) == 51
        with pytest.raises(ValueError):
            qp_from_crf(60)

    def test_quant_dequant_error_bounded(self):
        rng = np.random.default_rng(3)
        coeffs = rng.uniform(-200, 200, size=(8, 8))
        for qp in (0, 10, 30, 51):
            levels = quantize(coeffs, qp)
            rec = dequantize(levels, qp)
            bound = 0.5 * qstep_from_qp(qp) * frequency_weights().max() + 1e-9
            assert np.max(np.abs(rec - coeffs)) <= bound

    def test_higher_qp_more_zeros(self):
        rng = np.random.default_rng(4)
        coeffs = rng.uniform(-20, 20, size=(8, 8))
        nz = [np.count_nonzero(quantize(coeffs, qp)) for qp in (5, 25, 45)]
        assert nz[0] >= nz[1] >= nz[2]

    def test_weights_increase_with_frequency(self):
        w = frequency_weights()
        assert w[0, 0] == 1.0
        assert w[7, 7] == w.max()
        assert np.all(np.diff(w[0]) >= 0)

    def test_unweighted_flat(self):
        coeffs = np.full((8, 8), 10.0)
        levels = quantize(coeffs, 20, weighted=False)
        assert len(np.unique(levels)) == 1


class TestIntraPrediction:
    def test_first_block_dc_default(self):
        recon = np.zeros((16, 16))
        pred = predict_block(recon, 0, 0, MODE_DC)
        np.testing.assert_allclose(pred, 128.0)

    def test_vertical_copies_top_row(self):
        recon = np.zeros((16, 16))
        recon[7, 8:16] = np.arange(8)
        pred = predict_block(recon, 1, 1, MODE_V)
        for row in pred:
            np.testing.assert_array_equal(row, np.arange(8))

    def test_horizontal_copies_left_col(self):
        recon = np.zeros((16, 16))
        recon[8:16, 7] = np.arange(8)
        pred = predict_block(recon, 1, 1, MODE_H)
        for col in pred.T:
            np.testing.assert_array_equal(col, np.arange(8))

    def test_no_left_neighbor_defaults(self):
        recon = np.zeros((16, 16))
        pred = predict_block(recon, 1, 0, MODE_H)
        np.testing.assert_allclose(pred, 128.0)

    def test_dc_uses_neighbors(self):
        recon = np.zeros((16, 16))
        recon[7, 0:8] = 100.0  # top row of block (1, 0)
        pred = predict_block(recon, 1, 0, MODE_DC)
        np.testing.assert_allclose(pred, 100.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            predict_block(np.zeros((8, 8)), 0, 0, 9)

    def test_choose_mode_picks_vertical_for_vertical_pattern(self):
        recon = np.zeros((16, 16))
        column_pattern = np.tile(np.arange(8) * 20.0, (8, 1))
        recon[0:8, 0:8] = column_pattern  # block above reconstructed
        original = np.zeros((16, 16))
        original[8:16, 0:8] = column_pattern
        mode, pred = choose_mode(recon, original, 1, 0)
        assert mode == MODE_V
        np.testing.assert_allclose(pred, column_pattern)


class TestMotion:
    def _shifted_pair(self, dy, dx, seed=0):
        rng = np.random.default_rng(seed)
        ref = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        target = np.zeros_like(ref)
        target[16:32, 16:32] = ref[16 + dy:32 + dy, 16 + dx:32 + dx]
        return ref, target

    @pytest.mark.parametrize("dy,dx", [(0, 0), (3, -2), (-5, 4), (7, 7)])
    def test_finds_exact_shift(self, dy, dx):
        ref, target = self._shifted_pair(dy, dx)
        got_dy, got_dx, sad = motion_search(ref, target, 16, 16, search_range=7)
        assert (got_dy, got_dx) == (dy, dx)
        assert sad == 0.0

    def test_respects_frame_bounds(self):
        rng = np.random.default_rng(1)
        ref = rng.integers(0, 255, size=(32, 32)).astype(np.uint8)
        target = rng.integers(0, 255, size=(32, 32)).astype(np.uint8)
        dy, dx, _ = motion_search(ref, target, 0, 0, search_range=7)
        assert dy >= 0 and dx >= 0  # cannot leave top-left corner

    def test_compensate_matches_slice(self):
        rng = np.random.default_rng(2)
        ref = rng.uniform(size=(32, 32))
        block = compensate(ref, 8, 8, 2, -3, 16, 16)
        np.testing.assert_array_equal(block, ref[10:26, 5:21])

    def test_compensate_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            compensate(np.zeros((32, 32)), 16, 16, 10, 10, 16, 16)

    def test_chroma_vector_halves(self):
        assert chroma_vector(4, -6) == (2, -3)
        assert chroma_vector(5, -5) == (2, -3)  # floor division

    @given(st.integers(-7, 7), st.integers(-7, 7))
    @settings(max_examples=30, deadline=None)
    def test_property_chroma_vector_in_half_range(self, dy, dx):
        cy, cx = chroma_vector(dy, dx)
        assert abs(cy) <= (abs(dy) + 1) // 2 + 1
        assert abs(cx) <= (abs(dx) + 1) // 2 + 1


class TestGopPlanning:
    def test_single_frame(self):
        plans = plan_segment(0, 1)
        assert len(plans) == 1
        assert plans[0].ftype == "I"

    def test_every_display_planned_once(self):
        plans = plan_segment(10, 17, n_b_frames=2)
        displays = sorted(p.display for p in plans)
        assert displays == list(range(10, 27))

    def test_b_frames_have_both_refs(self):
        for plan in plan_segment(0, 20, n_b_frames=3):
            if plan.ftype == "B":
                assert plan.fwd_ref is not None and plan.bwd_ref is not None
                assert plan.fwd_ref < plan.display < plan.bwd_ref

    def test_p_frames_reference_past_anchor(self):
        plans = plan_segment(0, 20, n_b_frames=2)
        anchors = {p.display for p in plans if p.ftype in ("I", "P")}
        for plan in plans:
            if plan.ftype == "P":
                assert plan.fwd_ref in anchors
                assert plan.fwd_ref < plan.display

    def test_refs_decoded_before_use(self):
        """In encode order, every reference precedes its dependent frame."""
        plans = plan_segment(0, 23, n_b_frames=2)
        decoded = set()
        for plan in plans:
            if plan.fwd_ref is not None:
                assert plan.fwd_ref in decoded
            if plan.bwd_ref is not None:
                assert plan.bwd_ref in decoded
            decoded.add(plan.display)

    def test_no_b_frames_mode(self):
        plans = plan_segment(0, 10, n_b_frames=0)
        assert count_types(plans) == {"I": 1, "P": 9, "B": 0}

    def test_extra_i_interval(self):
        plans = plan_segment(0, 30, n_b_frames=0, extra_i_interval=10)
        i_frames = sorted(p.display for p in plans if p.ftype == "I")
        assert i_frames == [0, 10, 20]

    def test_last_frame_is_anchor(self):
        plans = plan_segment(0, 17, n_b_frames=4)
        last = [p for p in plans if p.display == 16]
        assert last[0].ftype in ("I", "P")

    def test_bad_args(self):
        with pytest.raises(ValueError):
            plan_segment(0, 0)
        with pytest.raises(ValueError):
            plan_segment(0, 5, n_b_frames=-1)
        with pytest.raises(ValueError):
            plan_segment(0, 5, extra_i_interval=0)

    @given(st.integers(1, 60), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_plan_is_complete_and_causal(self, length, n_b):
        plans = plan_segment(0, length, n_b_frames=n_b)
        assert sorted(p.display for p in plans) == list(range(length))
        decoded = set()
        for plan in plans:
            for ref in (plan.fwd_ref, plan.bwd_ref):
                if ref is not None:
                    assert ref in decoded
            decoded.add(plan.display)
