"""Tests for the bit-level I/O and entropy coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.codec.bitstream import BitReader, BitWriter
from repro.video.codec.entropy import (
    decode_coeff_block,
    encode_coeff_block,
    read_se,
    read_ue,
    write_se,
    write_ue,
    zigzag_order,
)


class TestBitWriterReader:
    def test_single_bits(self):
        w = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        for b in pattern:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(pattern))] == pattern

    def test_write_bits_roundtrip(self):
        w = BitWriter()
        w.write_bits(0b10110, 5)
        w.write_bits(0b01, 2)
        r = BitReader(w.getvalue())
        assert r.read_bits(5) == 0b10110
        assert r.read_bits(2) == 0b01

    def test_uint_roundtrip(self):
        w = BitWriter()
        w.write_uint(123456789, 32)
        assert BitReader(w.getvalue()).read_uint(32) == 123456789

    def test_value_too_big_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(8, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_bit_length_tracks(self):
        w = BitWriter()
        assert w.bit_length == 0
        w.write_bits(0, 13)
        assert w.bit_length == 13

    def test_padding_on_getvalue(self):
        w = BitWriter()
        w.write_bit(1)
        data = w.getvalue()
        assert len(data) == 1
        assert data[0] == 0b10000000

    def test_eof_raises(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(b"\xff")
        assert r.bits_remaining == 8
        r.read_bits(3)
        assert r.bits_remaining == 5

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_property_bit_roundtrip(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(bits))] == bits


class TestExpGolomb:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 2**16])
    def test_ue_roundtrip(self, value):
        w = BitWriter()
        write_ue(w, value)
        assert read_ue(BitReader(w.getvalue())) == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 63, -64, 1000, -999])
    def test_se_roundtrip(self, value):
        w = BitWriter()
        write_se(w, value)
        assert read_se(BitReader(w.getvalue())) == value

    def test_ue_negative_raises(self):
        with pytest.raises(ValueError):
            write_ue(BitWriter(), -1)

    def test_ue_code_lengths(self):
        """Small values use fewer bits (the point of Exp-Golomb)."""
        def bits(v):
            w = BitWriter()
            write_ue(w, v)
            return w.bit_length
        assert bits(0) == 1
        assert bits(1) == 3
        assert bits(2) == 3
        assert bits(3) == 5
        assert bits(0) < bits(5) < bits(500)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_ue_sequence_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            write_ue(w, v)
        r = BitReader(w.getvalue())
        assert [read_ue(r) for _ in values] == values

    @given(st.lists(st.integers(-5_000, 5_000), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_se_sequence_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            write_se(w, v)
        r = BitReader(w.getvalue())
        assert [read_se(r) for _ in values] == values


class TestZigzag:
    def test_is_permutation(self):
        order = zigzag_order(8)
        assert sorted(order.tolist()) == list(range(64))

    def test_4x4_known_prefix(self):
        order = zigzag_order(4)
        # (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), ...
        assert order[:6].tolist() == [0, 1, 4, 8, 5, 2]

    def test_cached(self):
        assert zigzag_order(8) is zigzag_order(8)


class TestCoeffBlock:
    def test_zero_block_is_cheap(self):
        w = BitWriter()
        encode_coeff_block(w, np.zeros((8, 8), dtype=np.int64))
        assert w.bit_length == 1  # just ue(0)

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-20, 20, size=(8, 8))
        block[rng.uniform(size=(8, 8)) < 0.7] = 0
        w = BitWriter()
        encode_coeff_block(w, block)
        out = decode_coeff_block(BitReader(w.getvalue()), 8)
        np.testing.assert_array_equal(out, block)

    def test_roundtrip_dense(self):
        rng = np.random.default_rng(1)
        block = rng.integers(-100, 100, size=(8, 8))
        block[block == 0] = 1
        w = BitWriter()
        encode_coeff_block(w, block)
        np.testing.assert_array_equal(
            decode_coeff_block(BitReader(w.getvalue()), 8), block)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            encode_coeff_block(BitWriter(), np.zeros((4, 8), dtype=np.int64))

    def test_sparse_blocks_cost_fewer_bits(self):
        sparse = np.zeros((8, 8), dtype=np.int64)
        sparse[0, 0] = 5
        dense = np.ones((8, 8), dtype=np.int64)
        ws, wd = BitWriter(), BitWriter()
        encode_coeff_block(ws, sparse)
        encode_coeff_block(wd, dense)
        assert ws.bit_length < wd.bit_length

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        block = rng.integers(-50, 50, size=(8, 8))
        block[rng.uniform(size=(8, 8)) < rng.uniform(0.3, 0.95)] = 0
        w = BitWriter()
        encode_coeff_block(w, block)
        np.testing.assert_array_equal(
            decode_coeff_block(BitReader(w.getvalue()), 8), block)
