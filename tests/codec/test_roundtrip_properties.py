"""Property-style codec round-trip sweeps (seeded, hand-rolled).

A seeded random sweep over the encoder's whole configuration surface —
GOP shape (``n_b_frames``, ``extra_i_interval``), quantisation (CRF/QP),
resolution (including odd multiples of the macroblock size), and frame
count — checks the invariants every ``decode(encode(x))`` round trip must
hold, regardless of settings:

- frame count, display order, frame shapes, and dtype survive the trip;
- reconstruction quality (PSNR vs the original) is monotone
  non-increasing in QP;
- a decoder carries no hidden state across segments: decoding segment k
  after segments 0..k-1 is bit-identical to decoding it with a fresh
  decoder.

The sweeps are explicit seeded loops (not hypothesis strategies) so a
failure names its exact configuration and replays by seed.
"""

import random

import numpy as np
import pytest

from repro.video import detect_segments, fixed_length_segments, make_video, psnr
from repro.video.codec import CodecConfig, Decoder, Encoder
from repro.video.codec.motion import MB
from repro.video import yuv420_to_rgb


def _clip(size, n_frames, fps=10.0, seed=1, genre="sports"):
    return make_video("prop", genre, seed=seed, size=size,
                      duration_seconds=n_frames / fps, fps=fps)


def _roundtrip(clip, config):
    segments = detect_segments(clip.frames)
    encoded = Encoder(config).encode(clip.frames, segments, fps=clip.fps)
    return encoded, Decoder().decode_video(encoded)


def _mean_psnr(clip, decoded):
    values = [psnr(yuv420_to_rgb(frame), ref)
              for frame, ref in zip(decoded.frames, clip.frames)]
    return float(np.mean(values))


class TestRoundTripSweep:
    def test_seeded_configuration_sweep_preserves_shape_invariants(self):
        rng = random.Random(2024)
        # Odd multiples of MB=16 exercise the chroma (H/2, W/2) planes at
        # odd sizes, where a half-resolution rounding bug would bite.
        sizes = [(32, 32), (48, 64), (48, 80), (80, 48), (16, 96)]
        for case in range(8):
            size = sizes[rng.randrange(len(sizes))]
            n_frames = rng.randrange(6, 20)
            config = CodecConfig(
                crf=rng.randrange(10, 52),
                n_b_frames=rng.randrange(0, 4),
                search_range=rng.randrange(2, 9),
                extra_i_interval=rng.choice([None, 3, 5]),
                deblock=rng.random() < 0.5,
                half_pel=rng.random() < 0.5,
            )
            clip = _clip(size, n_frames, seed=300 + case)
            encoded, decoded = _roundtrip(clip, config)
            context = f"case {case}: {size=} {n_frames=} {config}"

            assert decoded.n_frames == clip.n_frames, context
            assert decoded.frame_types[0] == "I", context
            h, w = size
            for frame in decoded.frames:
                assert frame.y.shape == (h, w), context
                assert frame.u.shape == (h // 2, w // 2), context
                assert frame.v.shape == (h // 2, w // 2), context
                assert frame.y.dtype == decoded.frames[0].y.dtype, context
            # Every decoded frame converts to a finite RGB image in range.
            rgb = yuv420_to_rgb(decoded.frames[-1])
            assert rgb.shape == (h, w, 3), context
            assert np.isfinite(rgb).all(), context

    def test_frame_counts_survive_any_segmentation(self):
        rng = random.Random(7)
        clip = _clip((32, 48), 18, seed=9)
        for length in (3, 5, 18):
            segments = fixed_length_segments(clip.n_frames, length)
            config = CodecConfig(crf=rng.randrange(20, 50))
            encoded = Encoder(config).encode(clip.frames, segments,
                                             fps=clip.fps)
            decoded = Decoder().decode_video(encoded)
            assert decoded.n_frames == clip.n_frames
            assert sum(seg.n_frames for seg in encoded.segments) \
                == clip.n_frames

    @pytest.mark.parametrize("size", [(30, 48), (48, 50), (17, 33)])
    def test_unaligned_dimensions_fail_loudly(self, size):
        clip = _clip((64, 64), 6, seed=2)
        frames = clip.frames[:, :size[0], :size[1], :]
        segments = fixed_length_segments(frames.shape[0], 6)
        with pytest.raises(ValueError, match=f"multiples of {MB}"):
            Encoder(CodecConfig()).encode(frames, segments, fps=10.0)


class TestRateDistortionMonotonicity:
    def test_psnr_non_increasing_in_qp(self):
        clip = _clip((48, 64), 10, seed=11)
        psnrs, sizes = [], []
        for crf in (12, 24, 36, 48):
            encoded, decoded = _roundtrip(clip, CodecConfig(crf=crf))
            psnrs.append(_mean_psnr(clip, decoded))
            sizes.append(encoded.total_bytes)
        for better, worse in zip(psnrs, psnrs[1:]):
            assert worse <= better, psnrs
        # And the bitrate moves the other way.
        for bigger, smaller in zip(sizes, sizes[1:]):
            assert smaller <= bigger, sizes

    def test_monotone_across_gop_shapes(self):
        rng = random.Random(31)
        for _ in range(3):
            n_b = rng.randrange(0, 3)
            clip = _clip((32, 48), 8, seed=rng.randrange(1000))
            low = _mean_psnr(clip, _roundtrip(
                clip, CodecConfig(crf=16, n_b_frames=n_b))[1])
            high = _mean_psnr(clip, _roundtrip(
                clip, CodecConfig(crf=46, n_b_frames=n_b))[1])
            assert high <= low


class TestDecoderStateReset:
    def test_segment_decode_is_independent_of_history(self):
        clip = _clip((32, 48), 15, seed=5)
        segments = fixed_length_segments(clip.n_frames, 5)
        encoded = Encoder(CodecConfig(crf=30)).encode(
            clip.frames, segments, fps=clip.fps)

        stateful = Decoder()
        replayed = []
        for seg in encoded.segments:
            replayed.append(stateful.decode_segment(
                seg, encoded.width, encoded.height))

        for i, seg in enumerate(encoded.segments):
            fresh = Decoder().decode_segment(seg, encoded.width,
                                             encoded.height)
            assert len(fresh) == len(replayed[i])
            for a, b in zip(fresh, replayed[i]):
                assert a.display == b.display and a.ftype == b.ftype
                assert np.array_equal(a.frame.y, b.frame.y)
                assert np.array_equal(a.frame.u, b.frame.u)
                assert np.array_equal(a.frame.v, b.frame.v)

    def test_same_decoder_twice_is_deterministic(self):
        clip = _clip((32, 48), 8, seed=6)
        segments = fixed_length_segments(clip.n_frames, 8)
        encoded = Encoder(CodecConfig(crf=35)).encode(
            clip.frames, segments, fps=clip.fps)
        decoder = Decoder()
        first = decoder.decode_video(encoded)
        second = decoder.decode_video(encoded)
        for a, b in zip(first.frames, second.frames):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.u, b.u)
            assert np.array_equal(a.v, b.v)
