"""Tests for half-pel motion estimation and compensation."""

import numpy as np
import pytest

from repro.video import detect_segments, make_video, psnr_yuv, rgb_to_yuv420
from repro.video.codec import CodecConfig, Decoder, Encoder
from repro.video.codec.motion import (
    chroma_vector_halfpel,
    compensate,
    compensate_halfpel,
    motion_search_halfpel,
)


class TestCompensateHalfpel:
    def test_even_vector_matches_integer(self):
        rng = np.random.default_rng(0)
        ref = rng.uniform(0, 255, size=(48, 48))
        a = compensate_halfpel(ref, 16, 16, 4, -6, 16, 16)
        b = compensate(ref, 16, 16, 2, -3, 16, 16)
        np.testing.assert_array_equal(a, b)

    def test_half_position_is_average(self):
        ref = np.zeros((32, 32))
        ref[10, :] = 100.0
        ref[11, :] = 200.0
        block = compensate_halfpel(ref, 10, 0, 1, 0, 1, 16)
        np.testing.assert_allclose(block, 150.0)

    def test_horizontal_half_position(self):
        ref = np.zeros((32, 32))
        ref[:, 8] = 40.0
        ref[:, 9] = 80.0
        block = compensate_halfpel(ref, 0, 8, 0, 1, 16, 1)
        np.testing.assert_allclose(block, 60.0)

    def test_diagonal_half_is_four_tap_average(self):
        ref = np.array([[0.0, 10.0], [20.0, 30.0]])
        big = np.zeros((18, 18))
        big[:2, :2] = ref
        block = compensate_halfpel(big, 0, 0, 1, 1, 1, 1)
        np.testing.assert_allclose(block, 15.0)

    def test_out_of_bounds_raises(self):
        ref = np.zeros((32, 32))
        with pytest.raises(ValueError):
            compensate_halfpel(ref, 16, 16, 1, 0, 16, 16)  # needs row 33

    def test_negative_half_vector(self):
        rng = np.random.default_rng(1)
        ref = rng.uniform(0, 255, size=(48, 48))
        block = compensate_halfpel(ref, 16, 16, -1, 0, 16, 16)
        expected = 0.5 * (ref[15:31, 16:32] + ref[16:32, 16:32])
        np.testing.assert_allclose(block, expected)


class TestSearchHalfpel:
    def test_finds_integer_shift_exactly(self):
        rng = np.random.default_rng(2)
        ref = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        target = np.zeros_like(ref)
        target[16:32, 16:32] = ref[19:35, 14:30]
        dy, dx, sad = motion_search_halfpel(ref, target, 16, 16)
        assert (dy, dx) == (6, -4)  # half-pel units
        assert sad == 0.0

    def test_finds_half_shift(self):
        """A target built at a half-pel offset is matched with SAD 0."""
        rng = np.random.default_rng(3)
        ref = rng.uniform(0, 255, size=(64, 64))
        shifted = 0.5 * (ref[16:33, 16:32][:-1] + ref[17:34, 16:32][:-1])
        target = np.zeros_like(ref)
        target[16:32, 16:32] = shifted
        dy, dx, sad = motion_search_halfpel(ref, target, 16, 16)
        assert (dy, dx) == (1, 0)
        assert sad < 1e-6

    def test_never_worse_than_integer_search(self):
        from repro.video.codec.motion import motion_search
        rng = np.random.default_rng(4)
        ref = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        target = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        _, _, sad_int = motion_search(ref, target, 16, 16)
        _, _, sad_half = motion_search_halfpel(ref, target, 16, 16)
        assert sad_half <= sad_int


class TestChromaHalfpel:
    def test_quarter_rounding(self):
        assert chroma_vector_halfpel(4, -4) == (2, -2)
        assert chroma_vector_halfpel(5, -5) == (2, -3)
        assert chroma_vector_halfpel(1, 3) == (0, 1)


class TestHalfpelInLoop:
    @pytest.fixture(scope="class")
    def clip(self):
        return make_video("hp", "documentary", seed=5, size=(32, 48),
                          duration_seconds=2.0, fps=10)

    def test_flag_in_bitstream_roundtrip(self, clip):
        segs = detect_segments(clip.frames)
        for hp in (False, True):
            enc = Encoder(CodecConfig(crf=40, half_pel=hp)).encode(
                clip.frames, segs, fps=clip.fps)
            decoded = Decoder().decode_video(enc)
            assert decoded.n_frames == clip.n_frames

    def test_halfpel_improves_smooth_motion(self, clip):
        """On panning content half-pel prediction beats integer-pel."""
        segs = detect_segments(clip.frames)
        orig = [rgb_to_yuv420(f) for f in clip.frames]
        scores = {}
        for hp in (False, True):
            enc = Encoder(CodecConfig(crf=50, deblock=False,
                                      half_pel=hp)).encode(
                clip.frames, segs, fps=clip.fps)
            dec = Decoder().decode_video(enc)
            scores[hp] = float(np.mean(
                [psnr_yuv(a, b) for a, b in zip(orig, dec.frames)]))
        assert scores[True] > scores[False]

    def test_decode_deterministic_with_halfpel(self, clip):
        segs = detect_segments(clip.frames)
        enc = Encoder(CodecConfig(crf=45, half_pel=True)).encode(
            clip.frames, segs, fps=clip.fps)
        a = Decoder().decode_video(enc)
        b = Decoder().decode_video(enc)
        assert all(x == y for x, y in zip(a.frames, b.frames))
