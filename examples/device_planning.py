#!/usr/bin/env python
"""Device planning: pick a dcSR configuration for a target device.

Sweeps the dcSR-1/2/3 configurations and the NAS/NEMO big models over the
three device classes and resolutions of the paper, printing the practical
playback FPS (decode + SR inference per segment), memory feasibility, and
SR power draw.  Everything is analytic — no training needed — so this runs
in seconds.

    python examples/device_planning.py
"""

from repro.devices import (
    DEVICES,
    OutOfMemory,
    get_device,
    inference_seconds,
    playback_fps,
    sr_power_draw,
)
from repro.sr import EDSR, RESOLUTIONS, big_model_config, dcsr_config

SEGMENT_FRAMES = 30
INFERENCES = 1


def describe(model, resolution, device):
    try:
        cost = inference_seconds(model, resolution, device)
    except OutOfMemory:
        return "OOM", "-", "-"
    fps = playback_fps(model, resolution, device, SEGMENT_FRAMES, INFERENCES)
    watts = sr_power_draw(device, cost.profile.flops, cost.seconds)
    return f"{fps:6.1f}", f"{cost.seconds * 1000:7.1f}", f"{watts:5.2f}"


def main() -> None:
    for device_name in DEVICES:
        device = get_device(device_name)
        print(f"\n=== {device.name} "
              f"({device.effective_flops / 1e12:.1f} TFLOPs/s effective, "
              f"{device.usable_memory_bytes / 1e9:.0f} GB usable) ===")
        print(f"{'resolution':<10} {'model':<8} {'FPS':>6} {'ms/inf':>8} "
              f"{'SR W':>6}")
        for res_name, res in RESOLUTIONS.items():
            candidates = [("NAS/NEMO", EDSR(big_model_config(res_name)))]
            for level in (1, 2, 3):
                candidates.append(
                    (f"dcSR-{level}", EDSR(dcsr_config(level, res.sr_scale))))
            for label, model in candidates:
                fps, ms, watts = describe(model, res_name, device)
                marker = ""
                if fps not in ("OOM",) and float(fps) >= 30.0:
                    marker = "  <- real-time"
                print(f"{res_name:<10} {label:<8} {fps:>6} {ms:>8} "
                      f"{watts:>6}{marker}")

    print("\nReading the table: dcSR-1 is the only configuration that is "
          "real-time on the\nmobile-grade device at every resolution; the "
          "big models cannot even allocate\ntheir working set at 4K there "
          "(the paper's Figure 8).")


if __name__ == "__main__":
    main()
