#!/usr/bin/env python
"""Compare every playback method on one video.

Runs the full server pipeline, trains the NAS/NEMO big model with the same
step budget, and plays the video five ways:

- LOW            — the decoded CRF-51 video, untouched
- NAS            — big model, SR on every frame
- NEMO           — big model, I frames only (the paper's simplification)
- NEMO-adaptive  — big model, greedy per-segment anchor selection
- dcSR           — per-cluster micro models through the cached decoder hook

Prints quality, bytes moved, SR inference counts, and startup delay.
Takes a few minutes (real training).

    python examples/baseline_comparison.py
"""

import time

from repro.core import (
    DcsrClient,
    ServerConfig,
    build_package,
    play_low,
    play_nas,
    play_nemo,
    play_nemo_adaptive,
    startup_delay,
    train_big_model,
)
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, QUALITY_BIG_CONFIG, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


def main() -> None:
    clip = make_video("comparison", genre="music", seed=7, size=(48, 64),
                      duration_seconds=10.0, fps=10, n_distinct_scenes=3)
    train = SrTrainConfig(epochs=25, steps_per_epoch=12, batch_size=8,
                          patch_size=16, learning_rate=5e-3,
                          lr_decay_epochs=10)
    config = ServerConfig(codec=CodecConfig(crf=51), max_segment_len=20,
                          vae_train=VaeTrainConfig(epochs=12, batch_size=4),
                          sr_train=train,
                          micro_config=EdsrConfig(n_resblocks=2, n_filters=8))

    t0 = time.time()
    package = build_package(clip, config)
    print(f"server pipeline: {time.time() - t0:.0f}s "
          f"(K = {package.selection.k}, in-loop = "
          f"{package.manifest.enhance_in_loop})")

    t0 = time.time()
    big = train_big_model(package, clip.frames, QUALITY_BIG_CONFIG, train)
    print(f"big model: {time.time() - t0:.0f}s "
          f"({big.size_bytes / 1024:.0f} KiB)")

    results = {
        "LOW": play_low(package, clip.frames),
        "NAS": play_nas(package, big, clip.frames),
        "NEMO": play_nemo(package, big, clip.frames),
        "NEMO-adaptive": play_nemo_adaptive(package, big, clip.frames,
                                            budget_per_segment=2),
        "dcSR": DcsrClient(package).play(clip.frames),
    }

    bandwidth = 2e6  # 2 Mbit/s access link for the startup column
    print(f"\n{'method':<14} {'PSNR dB':>8} {'SSIM':>7} {'KiB':>7} "
          f"{'SR inf':>7} {'startup s':>10}")
    for name, res in results.items():
        model_bytes = res.model_bytes
        start = startup_delay(bandwidth,
                              package.encoded.segments[0].n_bytes,
                              model_bytes if name != "dcSR" else
                              package.manifest.model_sizes[
                                  package.manifest.label_sequence()[0]])
        print(f"{name:<14} {res.mean_psnr:>8.2f} {res.mean_ssim:>7.3f} "
              f"{res.total_bytes / 1024:>7.1f} {res.sr_inferences:>7d} "
              f"{start:>10.2f}")

    print("\nReading the table: NAS buys the top quality with ~4x the bytes "
          "and an inference\nper frame; dcSR matches NEMO's quality with "
          "per-cluster micro models, a fraction\nof the download, and the "
          "fastest SR startup.")


if __name__ == "__main__":
    main()
