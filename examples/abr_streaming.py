#!/usr/bin/env python
"""dcSR-aware adaptive bitrate streaming (the paper's discussion section).

Builds a real bitrate ladder with the codec, trains dcSR micro models for
the lowest rung, measures the *enhanced* quality per segment, and compares
a classic throughput-based ABR against a dcSR-aware policy that (a) budgets
micro-model downloads and (b) credits the enhanced quality — delivering the
same perceived quality from a cheaper rung.

    python examples/abr_streaming.py
"""

import numpy as np

from repro.abr import (
    DcsrAwareAbr,
    ThroughputAbr,
    build_ladder,
    qoe_score,
    random_walk_trace,
    simulate_session,
)
from repro.core import DcsrClient, ServerConfig, build_package, simulate_caching
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import detect_segments, make_video
from repro.video.codec import CodecConfig


def main() -> None:
    clip = make_video("abr-demo", genre="documentary", seed=33, size=(48, 64),
                      duration_seconds=16.0, fps=10, n_distinct_scenes=3)
    segments = detect_segments(clip.frames, max_length=20)

    # A three-rung ladder measured with the real codec.
    crfs = [30, 42, 51]
    ladder = build_ladder(clip, segments, crfs=crfs)
    print("ladder (mean PSNR / total KiB):")
    for level in ladder.levels:
        print(f"  CRF {level.crf:2d}: {level.mean_quality:6.2f} dB / "
              f"{level.total_bits / 8 / 1024:6.1f} KiB")

    # dcSR package for the lowest rung; measure its enhanced quality.
    config = ServerConfig(
        codec=CodecConfig(crf=crfs[-1]), max_segment_len=20,
        vae_train=VaeTrainConfig(epochs=10, batch_size=4),
        sr_train=SrTrainConfig(epochs=20, steps_per_epoch=10, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=8),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
    )
    package = build_package(clip, config)
    played = DcsrClient(package).play(clip.frames)

    enhanced = np.array([level.segment_quality for level in ladder.levels],
                        dtype=np.float64)
    for i, seg in enumerate(segments):
        vals = [p for p in played.psnr_per_frame[seg.start:seg.end]
                if np.isfinite(p)]
        enhanced[-1, i] = float(np.mean(vals))
    uplift = enhanced[-1].mean() - ladder.levels[-1].mean_quality
    print(f"\ndcSR uplift on the CRF-{crfs[-1]} rung: {uplift:+.2f} dB "
          f"({package.n_models} micro models, "
          f"{package.manifest.total_model_bytes / 1024:.0f} KiB)")

    # Model bytes charged at first use of each label (Algorithm 1 dry run).
    labels = package.manifest.label_sequence()
    flags, _ = simulate_caching(labels)
    model_bits = [package.manifest.model_sizes[lab] * 8 if flag else 0.0
                  for lab, flag in zip(labels, flags)]

    trace = random_walk_trace(mean_bps=120_000, duration_s=120.0, seed=4)
    # Viewer-acceptable target: the middle rung's quality.  The dcSR-aware
    # policy may satisfy it from a cheaper rung thanks to the SR uplift.
    target = float(enhanced[1].mean()) - 0.5

    plain = simulate_session(ladder, ThroughputAbr(), trace)
    aware = simulate_session(
        ladder,
        DcsrAwareAbr(enhanced_quality=enhanced,
                     model_bits_by_segment=model_bits,
                     target_quality_db=target),
        trace, quality_table=enhanced)

    print(f"\ntarget perceived quality: {target:.2f} dB")
    print(f"{'policy':<12} {'quality dB':>10} {'rebuf s':>8} "
          f"{'KiB moved':>10} {'QoE':>7}")
    for name, res in [("throughput", plain), ("dcSR-aware", aware)]:
        print(f"{name:<12} {res.mean_quality:>10.2f} "
              f"{res.rebuffer_seconds:>8.2f} {res.total_bits / 8 / 1024:>10.1f} "
              f"{qoe_score(res):>7.2f}")
    saving = 1.0 - aware.total_bits / plain.total_bits
    print(f"\nboth policies clear the {target:.1f} dB target; the plain "
          f"policy overshoots it by\nbuying the top rung, while the "
          f"dcSR-aware policy moved {saving:.0%} fewer bytes.")


if __name__ == "__main__":
    main()
