#!/usr/bin/env python
"""Codec playground: the H.264-like substrate on its own.

Encodes a synthetic clip at several CRF values, prints the rate-distortion
curve and the per-frame-type bit breakdown (I frames dominate — the
structural fact dcSR builds on), and demonstrates the decoder's I-frame
enhancement hook with a trivial sharpening filter.

    python examples/codec_playground.py
"""

import numpy as np

from repro.video import (
    YuvFrame,
    detect_segments,
    make_video,
    psnr_yuv,
    rgb_to_yuv420,
)
from repro.video.codec import CodecConfig, Decoder, Encoder


def sharpen_hook(frame: YuvFrame, display: int) -> YuvFrame:
    """A stand-in for an SR model: unsharp-mask the luma plane."""
    from scipy.ndimage import gaussian_filter
    luma = frame.y.astype(np.float64)
    blurred = gaussian_filter(luma, 1.0)
    sharp = np.clip(luma + 0.6 * (luma - blurred), 0, 255)
    return YuvFrame(sharp.astype(np.uint8), frame.u, frame.v)


def main() -> None:
    clip = make_video("codec-demo", genre="sports", seed=3, size=(48, 64),
                      duration_seconds=4.0, fps=10)
    segments = detect_segments(clip.frames)
    originals = [rgb_to_yuv420(f) for f in clip.frames]
    raw_bytes = clip.n_frames * originals[0].nbytes()

    print("CRF   size (KiB)  compression  luma PSNR (dB)")
    for crf in (10, 25, 40, 51):
        encoded = Encoder(CodecConfig(crf=crf)).encode(clip.frames, segments,
                                                       fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        quality = np.mean([psnr_yuv(a, b)
                           for a, b in zip(originals, decoded.frames)])
        print(f"{crf:3d}   {encoded.total_bytes / 1024:10.1f}  "
              f"{raw_bytes / encoded.total_bytes:10.1f}x  {quality:10.2f}")

    encoded = Encoder(CodecConfig(crf=35)).encode(clip.frames, segments,
                                                  fps=clip.fps)
    bits = encoded.bits_by_type()
    counts = {t: encoded.frame_types().count(t) for t in "IPB"}
    print("\nper-frame-type coding cost at CRF 35:")
    for ftype in "IPB":
        if counts[ftype]:
            per_frame = bits[ftype] / counts[ftype] / 8 / 1024
            print(f"  {ftype}: {counts[ftype]:3d} frames, "
                  f"{per_frame:6.2f} KiB/frame")

    plain = Decoder().decode_video(encoded)
    hooked = Decoder(i_frame_hook=sharpen_hook).decode_video(encoded)
    changed = sum(1 for a, b in zip(plain.frames, hooked.frames) if a != b)
    print(f"\nI-frame hook demo: sharpening only the "
          f"{len(plain.i_frame_indices)} I frames changed "
          f"{changed}/{plain.n_frames} decoded frames — the enhancement "
          f"propagates\nthrough the P/B reference structure, exactly the "
          f"mechanism dcSR exploits.")


if __name__ == "__main__":
    main()
