#!/usr/bin/env python
"""Quickstart: run the full dcSR pipeline on one synthetic video.

Builds the server-side package (segmentation -> VAE features -> constrained
clustering -> micro-model training), streams it through the client's
SR-integrated decoder, and prints quality and bandwidth against the
unenhanced low-quality decode.

Runs in a couple of minutes on a laptop CPU:

    python examples/quickstart.py
"""

from repro.core import (
    DcsrClient,
    ParallelConfig,
    ServerConfig,
    build_package,
    play_low,
)
from repro.obs import render_trace_summary
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


def main() -> None:
    # 1. A 10-second synthetic "music video" with recurring scenes — the
    #    offline stand-in for a YouTube video (see DESIGN.md).
    clip = make_video("quickstart", genre="music", seed=7, size=(48, 64),
                      duration_seconds=10.0, fps=10, n_distinct_scenes=3)
    print(f"video: {clip.name}, {clip.n_frames} frames "
          f"({clip.width}x{clip.height} @ {clip.fps:g} fps)")

    # 2. Server side: encode at CRF 51 (the paper's low-quality setting) and
    #    train one micro EDSR model per scene cluster.  The independent
    #    stages (per-segment encode/decode, per-cluster training) fan out
    #    over a process pool — bit-identical to the serial build.
    config = ServerConfig(
        codec=CodecConfig(crf=51),
        vae_train=VaeTrainConfig(epochs=12, batch_size=4),
        sr_train=SrTrainConfig(epochs=25, steps_per_epoch=12, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=10),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        parallel=ParallelConfig(workers=2, backend="process"),
    )
    package = build_package(clip, config)
    print(f"server pipeline: {package.telemetry.total_seconds:.1f}s — "
          f"{package.manifest.n_segments} segments, "
          f"K = {package.selection.k} micro models "
          f"({package.manifest.total_model_bytes / 1024:.0f} KiB total)")
    for line in package.telemetry.summary_lines():
        print(line)
    print(f"segment -> model labels: {package.manifest.label_sequence()}")

    # 3. Client side: stream with SR applied to I frames in the decoder's
    #    picture buffer; micro models are cached across segments.
    client = DcsrClient(package)
    result = client.play(reference_frames=clip.frames)
    low = play_low(package, clip.frames)

    print("\n              PSNR (dB)   SSIM    downloaded")
    print(f"dcSR          {result.mean_psnr:7.2f}  {result.mean_ssim:6.3f}"
          f"    {result.total_bytes / 1024:6.0f} KiB "
          f"(models: {result.model_bytes / 1024:.0f} KiB, "
          f"{result.cache_stats.downloads} downloads, "
          f"{result.cache_stats.hits} cache hits)")
    print(f"LOW (no SR)   {low.mean_psnr:7.2f}  {low.mean_ssim:6.3f}"
          f"    {low.total_bytes / 1024:6.0f} KiB")
    gain = result.mean_psnr - low.mean_psnr
    print(f"\ndcSR enhances the video by {gain:+.2f} dB overall; its I frames "
          f"gain the most and\npropagate through the GOP's P/B references.")

    # 4. The playback session's span tree, aggregated per stage — the same
    #    substrate `cli play --trace-out` exports as JSON.
    print()
    print(render_trace_summary(client.obs, title="playback trace"))


if __name__ == "__main__":
    main()
