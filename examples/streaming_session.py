#!/usr/bin/env python
"""Streaming session walk-through: model caching in action (Figure 7).

Plays a multi-scene video segment by segment and logs, for each segment,
which micro model it needs and whether the client downloads it or serves it
from cache — the walk-through of the paper's Figure 7 and Algorithm 1.
Finishes with the playback-rate estimate for a Jetson-class device.

    python examples/streaming_session.py
"""

from repro.core import DcsrClient, ServerConfig, build_package, simulate_caching
from repro.devices import get_device, inference_seconds
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


def main() -> None:
    # A longer video with few distinct scenes revisited many times — the
    # regime where caching pays off.
    clip = make_video("session", genre="documentary", seed=21, size=(48, 64),
                      duration_seconds=24.0, fps=10, n_distinct_scenes=3,
                      recurrence=0.6)
    config = ServerConfig(
        codec=CodecConfig(crf=51),
        vae_train=VaeTrainConfig(epochs=12, batch_size=4),
        sr_train=SrTrainConfig(epochs=15, steps_per_epoch=10, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=6),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
    )
    package = build_package(clip, config)
    manifest = package.manifest

    labels = manifest.label_sequence()
    flags, stats = simulate_caching(labels)
    print("segment  model  action")
    print("-------  -----  ---------")
    for record, downloaded in zip(manifest.segments, flags):
        action = "DOWNLOAD" if downloaded else "cache hit"
        size = manifest.model_sizes[record.model_label] / 1024
        extra = f" ({size:.0f} KiB)" if downloaded else ""
        print(f"{record.index:7d}  {record.model_label:5d}  {action}{extra}")
    print(f"\n{manifest.n_segments} segments, {manifest.n_models} micro models"
          f" -> {stats.downloads} downloads, {stats.hits} cache hits "
          f"({stats.hit_rate:.0%} hit rate)")

    # Actually play it and confirm the accounting matches the dry run.
    result = DcsrClient(package).play(clip.frames)
    assert result.cache_stats.downloads == stats.downloads
    print(f"\nplayback: {len(result.frames)} frames, "
          f"mean PSNR {result.mean_psnr:.2f} dB, "
          f"video {result.video_bytes / 1024:.0f} KiB + "
          f"models {result.model_bytes / 1024:.0f} KiB")

    # What would this cost on a mobile-grade device at full 1080p scale?
    jetson = get_device("jetson")
    deployed = EdsrConfig(n_resblocks=2, n_filters=8, scale=2)
    from repro.sr import EDSR
    cost = inference_seconds(EDSR(deployed), "1080p", jetson)
    per_segment = stats.requests and cost.seconds
    print(f"\non a {jetson.name}: {cost.seconds * 1000:.0f} ms per I-frame "
          f"inference at 1080p\n({cost.memory_bytes / 1e6:.0f} MB working set"
          f" of {jetson.usable_memory_bytes / 1e9:.0f} GB available)")
    del per_segment


if __name__ == "__main__":
    main()
