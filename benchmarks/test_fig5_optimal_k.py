"""Figure 5 — silhouette coefficient vs number of clusters.

A long multi-scene video's I-frame features are clustered with global
K-means for every K; the silhouette coefficient peaks at the video's true
scene diversity (the paper's 12-minute video peaks at K = 16; our 60-second
six-scene stand-in peaks at 6).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_series, save_results
from repro.clustering import global_kmeans_path, silhouette_score
from repro.features import ConvVAE, VaeTrainConfig, extract_features, frames_to_batch, train_vae
from repro.video import detect_segments, make_video

TRUE_SCENES = 6


def test_fig5_optimal_number_of_clusters(benchmark):
    def experiment():
        clip = make_video("fig5-long", "music", seed=42, size=(48, 64),
                          duration_seconds=60.0, fps=5,
                          n_distinct_scenes=TRUE_SCENES, recurrence=0.55)
        segments = detect_segments(clip.frames)
        iframes = np.stack([clip.frames[s.start] for s in segments])

        vae = ConvVAE(latent_dim=8, input_size=32, seed=0)
        train_vae(vae, frames_to_batch(iframes, 32),
                  VaeTrainConfig(epochs=30, batch_size=8))
        features = extract_features(vae, iframes)

        k_max = min(10, len(segments) - 1)
        path = global_kmeans_path(features, k_max)
        scores = {}
        for k in range(2, k_max + 1):
            labels = path[k - 1].labels
            if len(np.unique(labels)) >= 2:
                scores[k] = silhouette_score(features, labels)
        return scores, len(segments)

    scores, n_segments = run_once(benchmark, experiment)
    ks = sorted(scores)
    print_series(f"Figure 5: silhouette vs K ({n_segments} segments)",
                 ks, {"silhouette": [scores[k] for k in ks]})
    save_results("fig5", {"scores": {str(k): v for k, v in scores.items()}})

    best_k = max(scores, key=lambda k: (scores[k], -k))
    # The optimum should land at (or next to) the true scene diversity and
    # clearly beat a too-coarse clustering.
    assert abs(best_k - TRUE_SCENES) <= 1
    assert scores[best_k] > scores[2] + 0.05
    assert scores[best_k] > 0.5
