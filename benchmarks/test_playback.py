"""Client playback session: per-stage timing and bounded memory.

Measures where a streaming session's wall time goes (download / decode /
SR / colour conversion), the achieved frame rate against the native one,
and — the memory claim behind ``iter_frames`` — the peak number of
decoded frames resident at once, which must stay bounded by a single
segment regardless of video length.

A second, lossy run exercises the fault-tolerant path (injected failures
+ retries + concealment/fallback) and records the degradation and
goodput cost next to the clean numbers.
"""

import os

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import (
    DcsrClient,
    NetworkConfig,
    RetryPolicy,
    ServerConfig,
    SimulatedNetwork,
    build_package,
    session_goodput_bps,
    stall_ratio,
)
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


def _package():
    clip = make_video("playback-bench", genre="music", seed=7, size=(48, 64),
                      duration_seconds=4.0 if FAST else 10.0, fps=10,
                      n_distinct_scenes=3)
    epochs = 6 if FAST else 20
    config = ServerConfig(
        codec=CodecConfig(crf=51),
        max_segment_len=10,
        vae_train=VaeTrainConfig(epochs=4 if FAST else 10, batch_size=4),
        sr_train=SrTrainConfig(epochs=epochs, steps_per_epoch=10,
                               batch_size=8, patch_size=16,
                               lr_decay_epochs=max(2, epochs // 2)),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        validate_in_loop=False,
    )
    return clip, build_package(clip, config)


def test_playback_stage_breakdown(benchmark):
    clip, package = _package()

    def experiment():
        clean_client = DcsrClient(package)
        clean = clean_client.play(clip.frames)
        net = SimulatedNetwork(NetworkConfig(
            fail_rate=0.3, latency_s=0.02, bandwidth_bps=20e6, seed=1))
        lossy = DcsrClient(package, network=net,
                           retry=RetryPolicy(retries=2, backoff_s=0.01),
                           fallback=True).play(clip.frames)
        return clean, lossy, clean_client.obs

    clean, lossy, clean_obs = run_once(benchmark, experiment)

    rows = []
    for name, result in (("clean", clean), ("lossy", lossy)):
        t = result.telemetry
        rows.append([
            name,
            t.stage_seconds.get("download", 0.0),
            t.stage_seconds.get("decode", 0.0),
            t.stage_seconds.get("sr", 0.0),
            t.stage_seconds.get("color", 0.0),
            t.achieved_fps,
            t.peak_resident_frames,
            len(result.skipped_segments) + len(result.fallback_segments),
        ])
    print_table(
        f"Playback session ({len(package.segments)} segments, "
        f"{clip.n_frames} frames @ {clip.fps:g} fps)",
        ["session", "dl (s)", "decode (s)", "sr (s)", "color (s)",
         "fps", "peak frames", "degraded"], rows)

    longest_segment = max(s.n_frames for s in package.segments)
    save_results("playback", {
        "n_frames": clip.n_frames,
        "n_segments": len(package.segments),
        "longest_segment_frames": longest_segment,
        "native_fps": clip.fps,
        "clean": {
            "stage_seconds": clean.telemetry.stage_seconds,
            "achieved_fps": clean.telemetry.achieved_fps,
            "startup_seconds": clean.telemetry.startup_seconds,
            "stall_seconds": clean.telemetry.stall_seconds,
            "peak_resident_frames": clean.telemetry.peak_resident_frames,
            "cache_hit_rate": clean.telemetry.cache_hit_rate,
            "mean_psnr": clean.mean_psnr,
        },
        "lossy": {
            "stage_seconds": lossy.telemetry.stage_seconds,
            "achieved_fps": lossy.telemetry.achieved_fps,
            "stall_seconds": lossy.telemetry.stall_seconds,
            "stall_ratio": stall_ratio(lossy.telemetry),
            "goodput_bps": session_goodput_bps(lossy),
            "download_attempts": lossy.telemetry.download_attempts,
            "peak_resident_frames": lossy.telemetry.peak_resident_frames,
            "skipped_segments": lossy.skipped_segments,
            "fallback_segments": lossy.fallback_segments,
            "mean_psnr": lossy.mean_psnr,
        },
    }, trace=clean_obs)  # the result file carries its own span tree

    # The bounded-memory contract: the session never holds more than one
    # segment's frames (plus the held concealment frame).
    for result in (clean, lossy):
        assert result.telemetry.peak_resident_frames <= longest_segment + 1
        assert result.telemetry.peak_resident_frames < clip.n_frames
    # Per-stage accounting covers the whole compute budget.
    assert clean.telemetry.stage_seconds["decode"] > 0
    assert clean.telemetry.achieved_fps > 0
