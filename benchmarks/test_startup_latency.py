"""Startup latency (Section 2.2's model-download-overhead challenge).

NAS/NEMO must fetch the whole big model before playback can begin; dcSR
needs only the first segment's micro model.  Measured on the corpus
packages at several access bandwidths.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import startup_comparison
from repro.sr import EDSR, QUALITY_BIG_CONFIG

BANDWIDTHS = {"2 Mbit/s": 2e6, "10 Mbit/s": 1e7}


def test_startup_latency(benchmark, corpus_results):
    big_bytes = EDSR(QUALITY_BIG_CONFIG).size_bytes()

    def experiment():
        table = {}
        for label, bps in BANDWIDTHS.items():
            delays = [startup_comparison(exp.package, big_bytes, bps)
                      for exp in corpus_results]
            table[label] = {
                method: float(np.mean([d[method] for d in delays]))
                for method in ("NAS", "NEMO", "dcSR", "LOW")
            }
        return table

    table = run_once(benchmark, experiment)
    rows = [[label] + [vals[m] for m in ("NAS", "NEMO", "dcSR", "LOW")]
            for label, vals in table.items()]
    print_table("Startup delay (s) before playback can begin",
                ["bandwidth", "NAS", "NEMO", "dcSR", "LOW"], rows)
    save_results("startup_latency", table)

    for vals in table.values():
        assert vals["LOW"] <= vals["dcSR"] < vals["NAS"]
        assert vals["NAS"] == vals["NEMO"]
        # The paper's complaint: the big model dominates startup.  dcSR cuts
        # the model part of the wait by at least 2x.
        assert (vals["NAS"] - vals["LOW"]) > 2.0 * (vals["dcSR"] - vals["LOW"])
