"""Ablations of dcSR's design choices (DESIGN.md §6).

Not figures from the paper — benchmarks isolating why each design choice is
there:

- global K-means vs randomly seeded Lloyd's (Section 3.1.2's motivation);
- VAE features vs raw-pixel features for scene clustering;
- variable-length (shot-based) vs fixed-length segmentation;
- the Eq. 3 size budget: how the constraint trims silhouette-only K.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.clustering import (
    global_kmeans,
    kmeans,
    lloyd_iterations,
    max_k_for_budget,
    select_k,
    silhouette_score,
)
from repro.features import ConvVAE, VaeTrainConfig, extract_features, frames_to_batch, train_vae
from repro.video import detect_segments, fixed_length_segments, make_video
from repro.video.codec import CodecConfig, Encoder


def _clustering_video():
    return make_video("ablation", "music", seed=42, size=(48, 64),
                      duration_seconds=60.0, fps=5, n_distinct_scenes=6,
                      recurrence=0.55)


def _purity(labels, truth):
    """Fraction of samples whose cluster's majority scene matches theirs."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    correct = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        counts = np.bincount(members)
        correct += counts.max()
    return correct / len(truth)


class TestClusteringAblations:
    def test_global_vs_lloyd_kmeans(self, benchmark):
        """Global K-means never loses to single-restart Lloyd's, and wins
        strictly on hard instances — why the paper uses it (Section 3.1.2).

        The video corpus is the easy case (well-separated scenes: every run
        finds the optimum); the hard case uses many close, unequal-density
        blobs where randomly seeded Lloyd's regularly lands in local optima.
        """
        def experiment():
            # Easy case: real video features.
            clip = _clustering_video()
            segments = detect_segments(clip.frames)
            iframes = np.stack([clip.frames[s.start] for s in segments])
            vae = ConvVAE(latent_dim=8, input_size=32, seed=0)
            train_vae(vae, frames_to_batch(iframes, 32),
                      VaeTrainConfig(epochs=30, batch_size=8))
            features = extract_features(vae, iframes)
            video_global = global_kmeans(features, 6).inertia
            video_lloyd = [kmeans(features, 6, seed=s, n_init=1).inertia
                           for s in range(12)]

            # Hard case: 10 close blobs with very unequal sizes.
            rng = np.random.default_rng(7)
            centers = rng.uniform(-3, 3, size=(10, 4))
            sizes = [40, 3, 3, 3, 3, 3, 3, 3, 3, 3]
            hard = np.concatenate([
                c + rng.normal(0, 0.25, size=(n, 4))
                for c, n in zip(centers, sizes)
            ])
            hard_global = global_kmeans(hard, 10).inertia
            hard_lloyd = [kmeans(hard, 10, seed=s, n_init=1).inertia
                          for s in range(12)]
            return (video_global, video_lloyd, hard_global, hard_lloyd)

        vg, vl, hg, hl = run_once(benchmark, experiment)
        print_table("Ablation: global K-means vs single-restart Lloyd",
                    ["instance", "global", "lloyd best", "lloyd mean",
                     "lloyd worst"],
                    [["video features (K=6)", vg, min(vl),
                      float(np.mean(vl)), max(vl)],
                     ["hard blobs (K=10)", hg, min(hl),
                      float(np.mean(hl)), max(hl)]])
        save_results("ablation_global_kmeans", {
            "video": {"global": vg, "lloyd": vl},
            "hard": {"global": hg, "lloyd": hl}})
        assert vg <= min(vl) + 1e-9          # never worse on real features
        assert hg <= min(hl) + 1e-9
        assert hg < 0.99 * np.mean(hl)       # strictly better on hard case

    def test_vae_vs_raw_pixel_features(self, benchmark):
        """VAE latents cluster scenes at least as purely as raw downsampled
        pixels, in a space ~100x smaller."""
        def experiment():
            clip = _clustering_video()
            segments = detect_segments(clip.frames)
            iframes = np.stack([clip.frames[s.start] for s in segments])
            truth = [int(clip.scene_ids[s.start]) for s in segments]

            vae = ConvVAE(latent_dim=8, input_size=32, seed=0)
            train_vae(vae, frames_to_batch(iframes, 32),
                      VaeTrainConfig(epochs=30, batch_size=8))
            vae_feats = extract_features(vae, iframes)
            raw_feats = frames_to_batch(iframes, 16).reshape(len(iframes), -1)

            vae_purity = _purity(global_kmeans(vae_feats, 6).labels, truth)
            raw_purity = _purity(global_kmeans(raw_feats, 6).labels, truth)
            return (vae_purity, vae_feats.shape[1],
                    raw_purity, raw_feats.shape[1])

        vae_purity, vae_dim, raw_purity, raw_dim = run_once(benchmark, experiment)
        print_table("Ablation: clustering features",
                    ["features", "dim", "scene purity"],
                    [["VAE latent", vae_dim, vae_purity],
                     ["raw 16x16 pixels", raw_dim, raw_purity]])
        save_results("ablation_features", {
            "vae": {"purity": vae_purity, "dim": vae_dim},
            "raw": {"purity": raw_purity, "dim": raw_dim}})
        assert vae_purity >= 0.9
        assert vae_purity >= raw_purity - 0.05
        assert vae_dim < raw_dim / 50

    def test_budget_constraint_caps_k(self, benchmark):
        """Eq. 3: the size budget caps silhouette-only K selection."""
        def experiment():
            clip = _clustering_video()
            segments = detect_segments(clip.frames)
            iframes = np.stack([clip.frames[s.start] for s in segments])
            vae = ConvVAE(latent_dim=8, input_size=32, seed=0)
            train_vae(vae, frames_to_batch(iframes, 32),
                      VaeTrainConfig(epochs=30, batch_size=8))
            features = extract_features(vae, iframes)

            unconstrained = select_k(features, k_max=len(segments) - 1)
            tight_budget = max_k_for_budget(big_model_bytes=100,
                                            min_model_bytes=40)  # = 2
            constrained = select_k(features, k_max=tight_budget)
            return unconstrained.k, constrained.k, tight_budget

        k_free, k_tight, budget = run_once(benchmark, experiment)
        print_table("Ablation: Eq. 3 budget constraint",
                    ["selection", "K"],
                    [["silhouette only", k_free],
                     [f"budget (k_max = {budget})", k_tight]])
        assert k_tight <= budget < k_free


class TestSegmentationAblation:
    def test_variable_vs_fixed_segmentation(self, benchmark):
        """Shot-based variable-length split needs fewer I frames (and fewer
        bits) than fixed-length for the same content — Section 3.1.1."""
        def experiment():
            clip = make_video("seg-ablation", "documentary", seed=9,
                              size=(48, 64), duration_seconds=20.0, fps=10,
                              n_distinct_scenes=4)
            variable = detect_segments(clip.frames)
            mean_len = int(np.mean([s.n_frames for s in variable]))
            fixed = fixed_length_segments(clip.n_frames, max(mean_len // 2, 2))

            enc_var = Encoder(CodecConfig(crf=40)).encode(
                clip.frames, variable, fps=clip.fps)
            enc_fix = Encoder(CodecConfig(crf=40)).encode(
                clip.frames, fixed, fps=clip.fps)
            return {
                "variable": {"segments": len(variable),
                             "bytes": enc_var.total_bytes,
                             "i_frames": enc_var.frame_types().count("I")},
                "fixed": {"segments": len(fixed),
                          "bytes": enc_fix.total_bytes,
                          "i_frames": enc_fix.frame_types().count("I")},
            }

        stats = run_once(benchmark, experiment)
        print_table("Ablation: variable vs fixed segmentation (CRF 40)",
                    ["split", "segments", "I frames", "bytes"],
                    [[k, v["segments"], v["i_frames"], v["bytes"]]
                     for k, v in stats.items()])
        save_results("ablation_segmentation", stats)
        assert stats["variable"]["i_frames"] < stats["fixed"]["i_frames"]
        assert stats["variable"]["bytes"] < stats["fixed"]["bytes"]


class TestCodecAblation:
    def test_deblocking_filter(self, benchmark):
        """In-loop deblocking recovers ~2 dB at the paper's CRF-51 setting
        (blockiness is the dominant artifact the SR models then refine)."""
        def experiment():
            from repro.video import (detect_segments, make_video, psnr_yuv,
                                     rgb_to_yuv420)
            from repro.video.codec import CodecConfig, Decoder, Encoder

            clip = make_video("deblock-ablation", "documentary", seed=5,
                              size=(48, 64), duration_seconds=4.0, fps=10)
            segments = detect_segments(clip.frames)
            originals = [rgb_to_yuv420(f) for f in clip.frames]
            scores = {}
            for crf in (40, 51):
                for deblock in (False, True):
                    # half_pel off isolates the filter's own contribution
                    # (sub-pixel interpolation smooths similar artifacts).
                    enc = Encoder(CodecConfig(crf=crf, deblock=deblock,
                                              half_pel=False)).encode(
                        clip.frames, segments, fps=clip.fps)
                    dec = Decoder().decode_video(enc)
                    scores[(crf, deblock)] = float(np.mean(
                        [psnr_yuv(a, b) for a, b in zip(originals, dec.frames)]))
            return scores

        scores = run_once(benchmark, experiment)
        print_table("Ablation: in-loop deblocking filter",
                    ["CRF", "deblock off (dB)", "deblock on (dB)", "gain"],
                    [[crf, scores[(crf, False)], scores[(crf, True)],
                      scores[(crf, True)] - scores[(crf, False)]]
                     for crf in (40, 51)])
        save_results("ablation_deblock", {f"{k[0]}-{k[1]}": v
                                          for k, v in scores.items()})
        for crf in (40, 51):
            assert scores[(crf, True)] > scores[(crf, False)]
        # The filter matters most exactly where dcSR operates (CRF 51).
        assert (scores[(51, True)] - scores[(51, False)]) > 1.0


class TestNemoSimplification:
    def test_adaptive_anchors_vs_i_frames_only(self, benchmark, corpus_results):
        """The paper simplifies NEMO to 'SR on I frames'.  Real NEMO selects
        anchors adaptively under a budget; the point of selection is
        *efficiency*: close to the fixed-I-frame quality with fewer
        inferences (it stops adding anchors whose gain is marginal)."""
        from repro.core import play_nemo, play_nemo_adaptive

        def experiment():
            rows = []
            for exp in corpus_results[:2]:
                simple = exp.results["NEMO"]
                adaptive = play_nemo_adaptive(
                    exp.package, exp.big, exp.clip.frames,
                    budget_per_segment=2)
                rows.append((exp.clip.name, simple.mean_psnr,
                             simple.sr_inferences, adaptive.mean_psnr,
                             adaptive.sr_inferences))
            return rows

        rows = run_once(benchmark, experiment)
        print_table("Ablation: NEMO I-frames-only vs adaptive anchors",
                    ["video", "I-only dB", "I-only inf",
                     "adaptive dB", "adaptive inf"], rows)
        save_results("ablation_nemo_anchors", {r[0]: list(r[1:]) for r in rows})
        for name, simple_db, simple_inf, adaptive_db, adaptive_inf in rows:
            # Near-equal quality with no more (typically fewer) inferences.
            assert adaptive_db >= simple_db - 0.35, name
            assert adaptive_inf <= simple_inf, name
