"""Table 1 — micro-model size over the (n_filters, n_resblocks) grid.

Sizes are computed from real instantiated models (float32 parameters plus
container overhead), so the grid's structure — linear in ResBlocks,
quadratic in filters — is measured, not assumed.
"""

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.sr import TABLE1_FILTERS, TABLE1_RESBLOCKS, model_size_table


def test_table1_model_size_grid(benchmark):
    table = run_once(benchmark, model_size_table)

    rows = []
    for rb in TABLE1_RESBLOCKS:
        rows.append([rb] + [round(table[(f, rb)], 3) for f in TABLE1_FILTERS])
    print_table("Table 1: model size (MB); rows = n_resblocks, cols = n_filters",
                ["nRB \\ nf"] + [str(f) for f in TABLE1_FILTERS], rows)
    save_results("table1", {f"{f}x{rb}": table[(f, rb)]
                            for (f, rb) in table})

    # Structural checks mirroring the paper's table:
    # monotone along both axes ...
    for f in TABLE1_FILTERS:
        sizes = [table[(f, rb)] for rb in TABLE1_RESBLOCKS]
        assert all(a < b for a, b in zip(sizes[:-1], sizes[1:]))
    # ... roughly linear in ResBlocks at fixed filters ...
    ratio = table[(16, 32)] / table[(16, 8)]
    assert 2.5 < ratio < 4.5
    # ... and the largest config is tens of times the smallest.
    assert table[(20, 64)] / table[(4, 4)] > 20
