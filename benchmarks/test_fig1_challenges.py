"""Figure 1 — the practical challenges of video-specific SR.

(a) big-model inference rate vs resolution: below real time everywhere;
(b) big-model size grows with resolution;
(c) large per-frame quality variance of one big model across a video.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import cdf_points, print_series, print_table, save_results
from repro.devices import get_device, inference_seconds
from repro.sr import EDSR, big_model_config

RESOLUTIONS = ("720p", "1080p", "4k")


def test_fig1a_inference_rate(benchmark):
    """Fig 1(a): a NAS-like model infers below 30 FPS at every resolution."""
    desktop = get_device("desktop")

    def experiment():
        rates = {}
        for res in RESOLUTIONS:
            model = EDSR(big_model_config(res))
            rates[res] = 1.0 / inference_seconds(model, res, desktop).seconds
        return rates

    rates = run_once(benchmark, experiment)
    print_table("Figure 1(a): big-model inference rate (desktop)",
                ["resolution", "fps"],
                [[res, rates[res]] for res in RESOLUTIONS])
    save_results("fig1a", rates)
    assert all(rate < 30.0 for rate in rates.values())
    assert rates["720p"] > rates["1080p"] > rates["4k"]


def test_fig1b_model_size(benchmark):
    """Fig 1(b): big-model size grows with resolution."""

    def experiment():
        return {res: EDSR(big_model_config(res)).size_mb()
                for res in RESOLUTIONS}

    sizes = run_once(benchmark, experiment)
    print_table("Figure 1(b): big-model size vs resolution",
                ["resolution", "size (MB)"],
                [[res, sizes[res]] for res in RESOLUTIONS])
    save_results("fig1b", sizes)
    assert sizes["720p"] < sizes["1080p"] < sizes["4k"]
    assert sizes["4k"] > 2.0  # several MB: a real download burden


def test_fig1c_quality_variance(benchmark, corpus_results):
    """Fig 1(c): one big model's per-frame PSNR varies widely (paper: ~5 dB
    even on a single 12-minute video)."""

    def experiment():
        spreads = {}
        pooled = []
        for exp in corpus_results:
            values = [p for p in exp.results["NAS"].psnr_per_frame
                      if np.isfinite(p)]
            spreads[exp.clip.name] = float(np.percentile(values, 95)
                                           - np.percentile(values, 5))
            pooled.extend(values)
        return spreads, pooled

    spreads, pooled = run_once(benchmark, experiment)
    print_table("Figure 1(c): per-frame PSNR spread of the big model",
                ["video", "p95 - p5 spread (dB)"],
                [[name, spread] for name, spread in spreads.items()])
    cdf = cdf_points(pooled)
    print_series("Figure 1(c): PSNR CDF (pooled)", [round(v, 2) for v, _ in cdf],
                 {"cdf": [f for _, f in cdf]})
    save_results("fig1c", {"spreads": spreads, "cdf": cdf})
    # The paper reports ~5 dB variance; at our scaled-down size the spread
    # must still be substantial on at least one video.
    assert max(spreads.values()) > 2.0
