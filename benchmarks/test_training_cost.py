"""Section 4 (text) — training cost: micro models train ~3x cheaper.

Two views of the same claim:

- measured wall-clock: the whole dcSR server pipeline (VAE + clustering +
  all micro models) vs training the single NAS/NEMO big model;
- analytic FLOPs: forward/backward cost per step from the architectures.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.bench.workloads import corpus_spec, quality_server_config
from repro.sr import EDSR, QUALITY_BIG_CONFIG, training_flops_estimate


def test_training_cost_ratio(benchmark, corpus_results):
    def experiment():
        rows = []
        for exp in corpus_results:
            rows.append((exp.clip.name, exp.micro_train_seconds,
                         exp.big_train_seconds,
                         exp.big_train_seconds / exp.micro_train_seconds))
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Training cost: dcSR server pipeline vs big model",
                ["video", "dcSR (s)", "big (s)", "big / dcSR"], rows)

    config = quality_server_config(corpus_spec())
    micro_flops = training_flops_estimate(EDSR(config.micro_config),
                                          config.sr_train)
    big_flops = training_flops_estimate(EDSR(QUALITY_BIG_CONFIG),
                                        config.sr_train)
    k_typical = float(np.mean([exp.package.n_models
                               for exp in corpus_results]))
    analytic = big_flops / (k_typical * micro_flops)
    print_table("Analytic training FLOPs",
                ["quantity", "value"],
                [["micro model FLOPs/run", micro_flops],
                 ["big model FLOPs/run", big_flops],
                 ["mean K", k_typical],
                 ["big / (K * micro)", analytic]])
    save_results("training_cost", {
        "wallclock": [(n, m, b, r) for n, m, b, r in rows],
        "analytic_ratio": analytic,
    })

    # The paper reports ~3x cheaper training for dcSR.  Wall-clock includes
    # the VAE and clustering inside the dcSR column, so require a saving on
    # average rather than the exact factor.
    mean_ratio = float(np.mean([r for *_rest, r in rows]))
    assert mean_ratio > 1.2
    assert analytic > 1.5
