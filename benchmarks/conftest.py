"""Shared benchmark fixtures.

``corpus_results`` runs the full quality experiment once per session — the
six-genre corpus through the dcSR server pipeline, the NAS/NEMO big model,
and all four playback methods — and is shared by the Figure 1(c), 9, 10 and
training-cost benchmarks.  This is the expensive part (several minutes of
actual numpy training); set ``REPRO_BENCH_FAST=1`` for a reduced run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.bench import (
    corpus_spec,
    make_corpus,
    quality_big_train_config,
    quality_server_config,
)
from repro.core import (
    BigModelBaseline,
    DcsrClient,
    DcsrPackage,
    PlaybackResult,
    build_package,
    play_low,
    play_nas,
    play_nemo,
    train_big_model,
)
from repro.sr import QUALITY_BIG_CONFIG
from repro.video import VideoClip


@dataclass
class VideoExperiment:
    """Everything measured for one corpus video."""

    clip: VideoClip
    package: DcsrPackage
    big: BigModelBaseline
    results: dict[str, PlaybackResult] = field(default_factory=dict)
    micro_train_seconds: float = 0.0
    big_train_seconds: float = 0.0

    def mean_psnr(self, method: str) -> float:
        return self.results[method].mean_psnr

    def mean_ssim(self, method: str) -> float:
        return self.results[method].mean_ssim


@pytest.fixture(scope="session")
def corpus_results() -> list[VideoExperiment]:
    spec = corpus_spec()
    server_config = quality_server_config(spec)
    big_train = quality_big_train_config(spec)

    experiments: list[VideoExperiment] = []
    for clip in make_corpus(spec):
        t0 = time.time()
        package = build_package(clip, server_config)
        micro_seconds = time.time() - t0  # includes VAE + clustering

        t0 = time.time()
        big = train_big_model(package, clip.frames, QUALITY_BIG_CONFIG,
                              big_train)
        big_seconds = time.time() - t0

        experiment = VideoExperiment(clip=clip, package=package, big=big,
                                     micro_train_seconds=micro_seconds,
                                     big_train_seconds=big_seconds)
        experiment.results["dcSR"] = DcsrClient(package).play(clip.frames)
        experiment.results["NAS"] = play_nas(package, big, clip.frames)
        experiment.results["NEMO"] = play_nemo(package, big, clip.frames)
        experiment.results["LOW"] = play_low(package, clip.frames)
        experiments.append(experiment)
    return experiments


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
