"""Figure 9 — PSNR / SSIM across the six-video corpus.

The paper's result: dcSR matches NEMO closely, both within ~1 dB PSNR /
0.05 SSIM of NAS, and all SR methods above the unenhanced LOW decode.
At our scaled-down frame size the gap to NAS is larger on high-motion
genres (weaker enhancement propagation through the toy codec);
EXPERIMENTS.md records measured vs paper.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results

METHODS = ("NAS", "NEMO", "dcSR", "LOW")


def _collect(corpus_results, metric):
    table = {}
    for exp in corpus_results:
        table[exp.clip.name] = {
            method: (exp.mean_psnr(method) if metric == "psnr"
                     else exp.mean_ssim(method))
            for method in METHODS
        }
    return table


def test_fig9a_psnr(benchmark, corpus_results):
    table = run_once(benchmark, lambda: _collect(corpus_results, "psnr"))
    rows = [[name] + [vals[m] for m in METHODS] for name, vals in table.items()]
    means = [float(np.mean([vals[m] for vals in table.values()]))
             for m in METHODS]
    rows.append(["MEAN"] + means)
    print_table("Figure 9(a): PSNR (dB) per video", ["video"] + list(METHODS), rows)
    save_results("fig9a", table)

    mean = dict(zip(METHODS, means))
    # Orderings the paper reports:
    assert mean["NAS"] >= mean["dcSR"]             # NAS is the upper bound
    assert mean["NAS"] - mean["dcSR"] <= 1.5       # paper: <= 1 dB loss
    assert abs(mean["dcSR"] - mean["NEMO"]) < 0.5  # dcSR ~ NEMO
    assert mean["dcSR"] >= mean["LOW"]             # SR must not hurt
    # dcSR's I frames (the frames it actually enhances) beat NEMO's:
    for exp in corpus_results:
        def i_mean(method):
            res = exp.results[method]
            vals = [p for t, p in zip(res.frame_types, res.psnr_per_frame)
                    if t == "I" and np.isfinite(p)]
            return float(np.mean(vals))
        assert i_mean("dcSR") >= i_mean("LOW")


def test_fig9b_ssim(benchmark, corpus_results):
    table = run_once(benchmark, lambda: _collect(corpus_results, "ssim"))
    rows = [[name] + [vals[m] for m in METHODS] for name, vals in table.items()]
    means = [float(np.mean([vals[m] for vals in table.values()]))
             for m in METHODS]
    rows.append(["MEAN"] + means)
    print_table("Figure 9(b): SSIM per video", ["video"] + list(METHODS), rows)
    save_results("fig9b", table)

    mean = dict(zip(METHODS, means))
    assert mean["NAS"] >= mean["dcSR"] - 0.01
    assert abs(mean["dcSR"] - mean["NEMO"]) < 0.05
    assert mean["dcSR"] >= mean["LOW"] - 0.01
