"""Fleet serving: cache amortization and goodput as sessions scale.

Runs the multi-session serving simulator over a 4-cluster package
(``k_override=4`` so several distinct micro models are in play) at fleet
sizes 1/2/4/8 and records the serving-layer value propositions next to
each other: cross-session cache hit rate versus a solo session, aggregate
model bytes versus N× solo, goodput under a shared fair-share uplink, and
the per-session stall CDF.  A final batched run checks that cross-session
SR batching is a pure throughput optimisation — frames stay bitwise equal
to the per-session engine path.
"""

import os

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import DcsrClient, ServerConfig, build_package
from repro.core.client import FastPathConfig
from repro.features import VaeTrainConfig
from repro.obs import Observability
from repro.serve import FleetConfig, FleetSimulator
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

FLEET_SIZES = [1, 2, 4, 8]


def _package():
    clip = make_video("fleet-bench", genre="sports", seed=13, size=(48, 64),
                      duration_seconds=4.0 if FAST else 8.0, fps=10,
                      n_distinct_scenes=4)
    epochs = 6 if FAST else 15
    config = ServerConfig(
        codec=CodecConfig(crf=48),
        max_segment_len=10,
        k_override=4,           # several distinct micro models in play
        vae_train=VaeTrainConfig(epochs=4 if FAST else 8, batch_size=4),
        sr_train=SrTrainConfig(epochs=epochs, steps_per_epoch=10,
                               batch_size=8, patch_size=16,
                               lr_decay_epochs=max(2, epochs // 2)),
        micro_config=EdsrConfig(n_resblocks=1, n_filters=4),
        validate_in_loop=False,
    )
    return clip, build_package(clip, config)


def _fleet_config(sessions):
    return FleetConfig(sessions=sessions, arrival="poisson:2.0",
                       bandwidth_bps=4e6, latency_s=0.01, seed=2)


def test_fleet_scaling(benchmark):
    clip, package = _package()

    def experiment():
        solo = DcsrClient(package).play()
        obs = Observability(root_name="fleet-bench")
        runs = {}
        for sessions in FLEET_SIZES:
            sim = FleetSimulator(package, _fleet_config(sessions),
                                 obs=obs if sessions == max(FLEET_SIZES)
                                 else None)
            runs[sessions] = sim.run()
        batched = FleetSimulator(
            package,
            FleetConfig(sessions=3, batching=True, max_batch=4,
                        max_wait_s=0.01)).run()
        engine_solo = DcsrClient(
            package, fast_path=FastPathConfig(calibrate=False)).play()
        return solo, runs, batched, engine_solo, obs

    solo, runs, batched, engine_solo, obs = run_once(benchmark, experiment)

    rows = []
    for sessions in FLEET_SIZES:
        t = runs[sessions].telemetry
        rows.append([
            sessions,
            f"{t.cache_hit_rate:.0%}",
            t.cache_downloads,
            t.total_model_bytes,
            t.total_video_bytes,
            f"{t.aggregate_goodput_bps / 1e6:.2f}",
            t.peak_network_concurrency,
        ])
    print_table(
        f"Fleet scaling ({len(package.segments)} segments, "
        f"{len(package.models)} micro models)",
        ["sessions", "hit rate", "downloads", "model B", "video B",
         "goodput Mb/s", "peak net"], rows)

    biggest = runs[max(FLEET_SIZES)].telemetry
    save_results("fleet", {
        "n_segments": len(package.segments),
        "n_models": len(package.models),
        "solo": {
            "cache_hit_rate": solo.cache_stats.hit_rate,
            "model_bytes": solo.model_bytes,
            "video_bytes": solo.video_bytes,
        },
        "fleet": {
            str(sessions): {
                "cache_hit_rate": runs[sessions].telemetry.cache_hit_rate,
                "cache_downloads": runs[sessions].telemetry.cache_downloads,
                "total_model_bytes":
                    runs[sessions].telemetry.total_model_bytes,
                "total_video_bytes":
                    runs[sessions].telemetry.total_video_bytes,
                "aggregate_goodput_bps":
                    runs[sessions].telemetry.aggregate_goodput_bps,
                "mean_stall_ratio":
                    runs[sessions].telemetry.mean_stall_ratio,
                "stall_cdf": runs[sessions].telemetry.stall_cdf,
                "peak_network_concurrency":
                    runs[sessions].telemetry.peak_network_concurrency,
            } for sessions in FLEET_SIZES
        },
        "batched": {
            "n_batches": batched.telemetry.n_batches,
            "mean_batch_size": batched.telemetry.mean_batch_size,
        },
    }, trace=obs)  # the result file carries the 8-session span tree

    # Cross-session amortization: the fleet's hit rate beats a solo
    # session's, and model bytes stay (far) below N× solo — with an
    # unbounded shared cache every label is fetched exactly once.
    assert biggest.completed == max(FLEET_SIZES)
    assert biggest.cache_hit_rate > solo.cache_stats.hit_rate
    assert biggest.total_model_bytes < max(FLEET_SIZES) * solo.model_bytes
    assert biggest.total_model_bytes == solo.model_bytes
    # The stall CDF covers every session.
    assert biggest.stall_cdf[-1][1] == 1.0

    # Batching is a pure optimisation: bitwise-equal frames.
    assert batched.telemetry.n_batches > 0
    for shell in batched.completed():
        for ours, theirs in zip(shell.result.frames, engine_solo.frames):
            assert np.array_equal(ours, theirs)
