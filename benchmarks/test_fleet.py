"""Fleet serving: cache amortization and goodput as sessions scale.

Runs the multi-session serving simulator over a 4-cluster package
(``k_override=4`` so several distinct micro models are in play) in two
regimes, all on the single-threaded discrete-event scheduler:

- **playback** fleets at sizes 1/2/4/8: full media sessions, recording
  cross-session cache hit rate versus a solo session, aggregate model
  bytes versus N× solo, goodput under a shared fair-share uplink, and
  the per-session stall CDF.  The single-session fleet is asserted
  bitwise-equal to a plain :class:`DcsrClient` on a dedicated link — the
  event-driven scheduler is not allowed to change a single pixel.
- **trace** fleets at sizes 100/1,000/5,000: byte-trace sessions through
  the same CDN cache hierarchy and network pool, recording the aggregate
  goodput and origin-offload curves that only emerge at scale.

A final batched run checks that cross-session SR batching is a pure
throughput optimisation — frames stay bitwise equal to the per-session
engine path.
"""

import os

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import DcsrClient, ServerConfig, build_package
from repro.core.client import FastPathConfig
from repro.core.network import NetworkConfig, RetryPolicy, SimulatedNetwork
from repro.features import VaeTrainConfig
from repro.obs import Observability
from repro.serve import FleetConfig, FleetSimulator, SharedNetworkPool
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

FLEET_SIZES = [1, 2, 4, 8]
#: Trace-mode fleet sizes: the top one is the ISSUE's 5k-session target.
SCALE_SIZES = [100, 1000, 5000]


def _package():
    clip = make_video("fleet-bench", genre="sports", seed=13, size=(48, 64),
                      duration_seconds=4.0 if FAST else 8.0, fps=10,
                      n_distinct_scenes=4)
    epochs = 6 if FAST else 15
    config = ServerConfig(
        codec=CodecConfig(crf=48),
        max_segment_len=10,
        k_override=4,           # several distinct micro models in play
        vae_train=VaeTrainConfig(epochs=4 if FAST else 8, batch_size=4),
        sr_train=SrTrainConfig(epochs=epochs, steps_per_epoch=10,
                               batch_size=8, patch_size=16,
                               lr_decay_epochs=max(2, epochs // 2)),
        micro_config=EdsrConfig(n_resblocks=1, n_filters=4),
        validate_in_loop=False,
    )
    return clip, build_package(clip, config)


def _fleet_config(sessions):
    return FleetConfig(sessions=sessions, arrival="poisson:2.0",
                       bandwidth_bps=4e6, latency_s=0.01, seed=2)


def _scale_config(sessions):
    """Trace-mode CDN shape: sharded edges, second-hit admission, a fat
    shared pipe, light failure injection with fallback."""
    return FleetConfig(sessions=sessions, mode="trace",
                       arrival="poisson:100.0", bandwidth_bps=1e9,
                       latency_s=0.005, fail_rate=0.02, retries=3,
                       edges=8, cache_admission="second-hit",
                       fallback=True, seed=2)


def test_fleet_scaling(benchmark):
    clip, package = _package()

    def experiment():
        solo = DcsrClient(package).play()
        obs = Observability(root_name="fleet-bench")
        runs = {}
        for sessions in FLEET_SIZES:
            sim = FleetSimulator(package, _fleet_config(sessions),
                                 obs=obs if sessions == max(FLEET_SIZES)
                                 else None)
            runs[sessions] = sim.run()
        # The bitwise reference for the single-session fleet: a plain
        # client on a dedicated link with the session's derived seed.
        plain = DcsrClient(
            package,
            network=SimulatedNetwork(NetworkConfig(
                bandwidth_bps=4e6, latency_s=0.01,
                seed=SharedNetworkPool.session_seed(2, 0))),
            retry=RetryPolicy(retries=3)).play()
        scale = {}
        for sessions in SCALE_SIZES:
            sim = FleetSimulator(package, _scale_config(sessions))
            scale[sessions] = sim.run()
        batched = FleetSimulator(
            package,
            FleetConfig(sessions=3, batching=True, max_batch=4,
                        max_wait_s=0.01)).run()
        engine_solo = DcsrClient(
            package, fast_path=FastPathConfig(calibrate=False)).play()
        return solo, runs, plain, scale, batched, engine_solo, obs

    solo, runs, plain, scale, batched, engine_solo, obs = \
        run_once(benchmark, experiment)

    rows = []
    for sessions in FLEET_SIZES:
        t = runs[sessions].telemetry
        rows.append([
            sessions,
            f"{t.cache_hit_rate:.0%}",
            t.cache_downloads,
            t.total_model_bytes,
            t.total_video_bytes,
            f"{t.aggregate_goodput_bps / 1e6:.2f}",
            t.peak_network_concurrency,
        ])
    print_table(
        f"Fleet scaling ({len(package.segments)} segments, "
        f"{len(package.models)} micro models)",
        ["sessions", "hit rate", "downloads", "model B", "video B",
         "goodput Mb/s", "peak net"], rows)

    scale_rows = []
    for sessions in SCALE_SIZES:
        t = scale[sessions].telemetry
        scale_rows.append([
            sessions,
            f"{t.cache_hit_rate:.0%}",
            f"{t.origin_offload:.1%}",
            t.origin_fetches,
            f"{t.aggregate_goodput_bps / 1e6:.1f}",
            t.events_processed,
            f"{t.sim_duration_s:.1f}",
        ])
    print_table(
        "Trace-mode scale (single thread, 8 edges, second-hit admission)",
        ["sessions", "edge hits", "origin offload", "origin fetches",
         "goodput Mb/s", "events", "sim s"], scale_rows)

    biggest = runs[max(FLEET_SIZES)].telemetry
    save_results("fleet", {
        "n_segments": len(package.segments),
        "n_models": len(package.models),
        "solo": {
            "cache_hit_rate": solo.cache_stats.hit_rate,
            "model_bytes": solo.model_bytes,
            "video_bytes": solo.video_bytes,
        },
        "fleet": {
            str(sessions): {
                "cache_hit_rate": runs[sessions].telemetry.cache_hit_rate,
                "cache_downloads": runs[sessions].telemetry.cache_downloads,
                "total_model_bytes":
                    runs[sessions].telemetry.total_model_bytes,
                "total_video_bytes":
                    runs[sessions].telemetry.total_video_bytes,
                "aggregate_goodput_bps":
                    runs[sessions].telemetry.aggregate_goodput_bps,
                "mean_stall_ratio":
                    runs[sessions].telemetry.mean_stall_ratio,
                "stall_cdf": runs[sessions].telemetry.stall_cdf,
                "peak_network_concurrency":
                    runs[sessions].telemetry.peak_network_concurrency,
            } for sessions in FLEET_SIZES
        },
        # Goodput + origin-offload curves from the discrete-event trace
        # engine (one thread; sizes up to the 5k-session target).
        "scale": {
            str(sessions): {
                "cache_hit_rate": scale[sessions].telemetry.cache_hit_rate,
                "origin_offload": scale[sessions].telemetry.origin_offload,
                "origin_fetches": scale[sessions].telemetry.origin_fetches,
                "aggregate_goodput_bps":
                    scale[sessions].telemetry.aggregate_goodput_bps,
                "mean_stall_ratio":
                    scale[sessions].telemetry.mean_stall_ratio,
                "stall_cdf": scale[sessions].telemetry.stall_cdf,
                "events_processed":
                    scale[sessions].telemetry.events_processed,
                "sim_duration_s": scale[sessions].telemetry.sim_duration_s,
            } for sessions in SCALE_SIZES
        },
        "batched": {
            "n_batches": batched.telemetry.n_batches,
            "mean_batch_size": batched.telemetry.mean_batch_size,
        },
    }, trace=obs)  # the result file carries the 8-session span tree

    # The event-driven scheduler is invisible at N=1: frames, bytes, and
    # simulated download seconds match a plain client bitwise.
    [single] = runs[1].completed()
    assert len(single.result.frames) == len(plain.frames)
    for ours, theirs in zip(single.result.frames, plain.frames):
        assert np.array_equal(ours, theirs)
    assert single.result.model_bytes == plain.model_bytes
    assert single.result.video_bytes == plain.video_bytes
    assert (single.result.telemetry.stage_seconds["download"]
            == plain.telemetry.stage_seconds["download"])

    # Cross-session amortization: the fleet's hit rate beats a solo
    # session's, and model bytes stay (far) below N× solo — with an
    # unbounded shared cache every label is fetched exactly once.
    assert biggest.completed == max(FLEET_SIZES)
    assert biggest.cache_hit_rate > solo.cache_stats.hit_rate
    assert biggest.total_model_bytes < max(FLEET_SIZES) * solo.model_bytes
    assert biggest.total_model_bytes == solo.model_bytes
    # The stall CDF covers every session.
    assert biggest.stall_cdf[-1][1] == 1.0

    # The 5k-session target ran to completion on one thread, and the
    # origin-offload curve climbs with fleet size.
    top = scale[max(SCALE_SIZES)].telemetry
    assert top.completed == max(SCALE_SIZES) >= 5000
    assert top.events_processed >= max(SCALE_SIZES)
    offloads = [scale[s].telemetry.origin_offload for s in SCALE_SIZES]
    assert offloads == sorted(offloads)
    assert top.origin_offload > 0.95
    assert all(scale[s].telemetry.aggregate_goodput_bps > 0
               for s in SCALE_SIZES)

    # Batching is a pure optimisation: bitwise-equal frames.
    assert batched.telemetry.n_batches > 0
    for shell in batched.completed():
        for ours, theirs in zip(shell.result.frames, engine_solo.frames):
            assert np.array_equal(ours, theirs)
