"""Joint controller frontier: quality-per-joule versus stall ratio.

Builds one tiered package (three dcSR tiers per cluster), measures a real
three-rung CRF ladder over its segments, and streams it through the ABR
session simulator under three policies per (device class, network trace)
cell:

- **joint** — :class:`GreedyKnapsackController` under a per-device
  session-average power budget;
- **rung-only** — throughput ABR with SR off (the classic baseline);
- **sr-always** — throughput ABR with SR pinned on at the largest tier
  (what a controller-free dcSR client would do).

The frontier lands in ``bench_results/control.json``.  The acceptance
assertion: on every device class and every trace, the joint controller
Pareto-dominates at least one fixed configuration on the
(quality-per-joule, stall-ratio) plane — it is never strictly worse than
both fixed points.  A small trace-mode fleet with per-session device
classes closes the loop through the discrete-event scheduler.
"""

import os

from benchmarks.conftest import run_once
from repro.abr import build_ladder, constant_trace, random_walk_trace, \
    simulate_session
from repro.bench import print_table, save_results
from repro.control import (
    FixedController,
    GreedyKnapsackController,
    LadderControllerPolicy,
)
from repro.core import ServerConfig, build_package
from repro.devices import get_device
from repro.features import VaeTrainConfig
from repro.serve import FleetConfig, FleetSimulator
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

TIERS = ("dcSR-1", "dcSR-2", "dcSR-3")
#: Session-average power budgets (W): a bit above each device's
#: idle+decode baseline, so SR must pay for itself.
POWER_BUDGETS = {"jetson": 1.4, "laptop": 18.0, "desktop": 32.0}


def _package():
    clip = make_video("control-bench", genre="sports", seed=17,
                      size=(48, 64), duration_seconds=4.0 if FAST else 8.0,
                      fps=10, n_distinct_scenes=3)
    epochs = 6 if FAST else 12
    config = ServerConfig(
        codec=CodecConfig(crf=48),
        max_segment_len=10,
        k_override=3,
        vae_train=VaeTrainConfig(epochs=4 if FAST else 8, batch_size=4),
        sr_train=SrTrainConfig(epochs=epochs, steps_per_epoch=10,
                               batch_size=8, patch_size=16,
                               lr_decay_epochs=max(2, epochs // 2)),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        model_tiers=TIERS,
        validate_in_loop=False,
    )
    return clip, build_package(clip, config)


def _traces():
    return {
        "constant-2.5M": constant_trace(2.5e6),
        "walk-2M": random_walk_trace(2.0e6, duration_s=60.0, seed=5),
    }


def _policies(device_name, manifest, encoded=None):
    device = get_device(device_name)
    budget = POWER_BUDGETS[device_name]
    return {
        "joint": LadderControllerPolicy(
            GreedyKnapsackController(device, power_budget_w=budget),
            manifest, encoded=encoded),
        "rung-only": LadderControllerPolicy(
            FixedController(device), manifest, encoded=encoded),
        "sr-always": LadderControllerPolicy(
            FixedController(device, tier=TIERS[-1]), manifest,
            encoded=encoded),
    }


def _dominates(joint, fixed):
    """Weak Pareto dominance on (quality-per-joule up, stall-ratio down),
    strict on at least one axis."""
    qpj_ok = joint.quality_per_joule >= fixed.quality_per_joule
    stall_ok = joint.stall_ratio <= fixed.stall_ratio
    strict = (joint.quality_per_joule > fixed.quality_per_joule
              or joint.stall_ratio < fixed.stall_ratio)
    return qpj_ok and stall_ok and strict


def test_control_frontier(benchmark):
    clip, package = _package()
    ladder = build_ladder(clip, package.segments, crfs=[32, 40, 48])
    manifest = package.manifest

    def experiment():
        frontier = {}
        for device_name in POWER_BUDGETS:
            frontier[device_name] = {}
            for trace_name, trace in _traces().items():
                cell = {}
                for policy_name, policy in _policies(
                        device_name, manifest,
                        encoded=package.encoded).items():
                    cell[policy_name] = simulate_session(ladder, policy,
                                                         trace)
                frontier[device_name][trace_name] = cell
        fleet = FleetSimulator(package, FleetConfig(
            sessions=6, mode="trace", arrival="uniform:0.5",
            bandwidth_bps=2.5e6, devices=tuple(POWER_BUDGETS),
            controller="greedy", power_budget_w=max(POWER_BUDGETS.values()),
            seed=4)).run()
        return frontier, fleet

    frontier, fleet = run_once(benchmark, experiment)

    rows = []
    for device_name, by_trace in frontier.items():
        for trace_name, cell in by_trace.items():
            for policy_name, result in cell.items():
                rows.append([
                    device_name, trace_name, policy_name,
                    f"{result.mean_quality:.2f}",
                    f"{result.energy_joules:.1f}",
                    f"{result.quality_per_joule:.4f}",
                    f"{result.stall_ratio:.4f}",
                    f"{result.extra_bits / 8e3:.1f}",
                ])
    print_table(
        f"Joint-control frontier ({ladder.n_segments} segments, "
        f"{len(package.models)} clusters, tiers {'/'.join(TIERS)})",
        ["device", "trace", "policy", "quality dB", "energy J",
         "dB/J", "stall", "model KiB"], rows)

    dominated = {
        device_name: {
            trace_name: sorted(
                name for name in ("rung-only", "sr-always")
                if _dominates(cell["joint"], cell[name]))
            for trace_name, cell in by_trace.items()
        } for device_name, by_trace in frontier.items()
    }

    tier_table = {
        str(label): {
            tier: {
                precision: {
                    "size_bytes": record.size_bytes,
                    "gain_db": record.gain_db,
                    "net_gain_db": record.net_gain_db,
                } for precision, record in sorted(by_precision.items())
            } for tier, by_precision in sorted(by_tier.items())
        } for label, by_tier in sorted(manifest.tiers.items())
    }

    save_results("control", {
        "tiers": tier_table,
        "power_budgets_w": POWER_BUDGETS,
        "ladder_crfs": [32, 40, 48],
        "frontier": {
            device_name: {
                trace_name: {
                    policy_name: {
                        "mean_quality_db": result.mean_quality,
                        "energy_joules": result.energy_joules,
                        "quality_per_joule": result.quality_per_joule,
                        "stall_ratio": result.stall_ratio,
                        "rebuffer_seconds": result.rebuffer_seconds,
                        "extra_bits": result.extra_bits,
                        "levels": result.levels,
                        "tiers": result.tiers,
                    } for policy_name, result in cell.items()
                } for trace_name, cell in by_trace.items()
            } for device_name, by_trace in frontier.items()
        },
        "pareto_dominated_by_joint": dominated,
        "fleet": {
            "sessions": fleet.telemetry.completed,
            "total_energy_joules": fleet.telemetry.total_energy_joules,
            "mean_quality_per_joule":
                fleet.telemetry.mean_quality_per_joule,
        },
    })

    # Acceptance: the joint controller Pareto-dominates at least one fixed
    # configuration on every device class, on every trace.
    for device_name, by_trace in dominated.items():
        for trace_name, names in by_trace.items():
            assert names, (
                f"joint dominates neither fixed config on "
                f"{device_name}/{trace_name}")

    # Every cell streamed the whole session, and energy is modeled
    # everywhere (SR off still pays the idle+decode baseline).
    for by_trace in frontier.values():
        for cell in by_trace.values():
            for result in cell.values():
                assert result.played_seconds > 0
                assert result.energy_joules > 0
            # SR-always pays at least as much energy as rung-only.
            assert (cell["sr-always"].energy_joules
                    >= cell["rung-only"].energy_joules)

    # The fleet path agrees: all sessions complete and spend energy.
    assert fleet.telemetry.completed == 6
    assert fleet.telemetry.total_energy_joules > 0
