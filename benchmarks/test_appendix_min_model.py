"""Appendix A.1 — finding the minimum working model.

Walks the configuration grid in ascending size, training each candidate on
a video's I frames, and stops at the first configuration whose SR quality
is within tolerance of the big model trained the same way — the
"green-marked" per-video configurations of Table 1.  The minimum
configuration then bounds K via Eq. 3.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import corpus_spec, make_corpus, print_table, save_results
from repro.bench.workloads import quality_server_config
from repro.clustering import max_k_for_budget
from repro.core import prepare_video
from repro.sr import (
    EDSR,
    QUALITY_BIG_CONFIG,
    QUALITY_MICRO_GRID,
    evaluate_sr,
    find_minimum_working_model,
    train_sr,
)
from repro.video import yuv420_to_rgb


def test_appendix_a1_minimum_working_model(benchmark):
    """The search finds a config much smaller than the big model that still
    reaches comparable I-frame quality, and the implied K budget exceeds 1."""
    spec = corpus_spec()
    config = quality_server_config(spec)

    def experiment():
        rows = []
        # Two representative videos (one calm, one busy) keep the bench
        # affordable; the search is the same for all six.
        for clip in make_corpus(spec)[:2]:
            segments, _encoded, decoded = prepare_video(clip, config)
            idx = [s.start for s in segments]
            lq = np.stack([yuv420_to_rgb(decoded.frames[i]) for i in idx])
            hr = np.stack([clip.frames[i] for i in idx])

            big = EDSR(QUALITY_BIG_CONFIG, seed=0)
            train_sr(big, lq, hr, config.sr_train)
            big_psnr = evaluate_sr(big, lq, hr)["psnr"]

            search = find_minimum_working_model(
                lq, hr, big_psnr, grid=list(QUALITY_MICRO_GRID),
                tolerance_db=1.0, train_config=config.sr_train)
            k_budget = max_k_for_budget(EDSR(QUALITY_BIG_CONFIG).size_bytes(),
                                        search.size_bytes)
            rows.append((clip.name, big_psnr, search.config.label,
                         search.psnr, search.size_bytes, k_budget,
                         len(search.evaluated)))
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Appendix A.1: minimum working model per video",
                ["video", "big PSNR", "min config", "min PSNR",
                 "bytes", "K budget", "configs tried"], rows)
    save_results("appendix_a1", {r[0]: list(r[1:]) for r in rows})

    big_bytes = EDSR(QUALITY_BIG_CONFIG).size_bytes()
    for name, big_psnr, label, min_psnr, size_bytes, k_budget, tried in rows:
        # Comparable quality (the search's acceptance criterion, or its
        # best-effort fallback within 2 dB) at a fraction of the size.
        assert min_psnr >= big_psnr - 2.0, name
        assert size_bytes < big_bytes / 2, name
        assert k_budget >= 2, name
        # The search is lazy: it stops as soon as a config works.
        assert tried <= len(QUALITY_MICRO_GRID)
