"""Figure 11 — training loss vs training-set size (Appendix A.1).

A fixed-architecture micro model (8 filters / 8 ResBlocks, per the paper)
is initialised with the *same* weights and trained for the same number of
steps on growing subsets of a video's frames.  The final training loss
rises with the data size: fewer frames are easier to memorise — the
foundation of dcSR's per-cluster micro models.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_series, save_results
from repro.sr import EDSR, EdsrConfig, SrTrainConfig, train_sr
from repro.video import make_video

DATA_SIZES = (10, 50, 100, 150)


def test_fig11_training_loss_vs_data_size(benchmark):
    def experiment():
        clip = make_video("fig11", "documentary", seed=11, size=(48, 64),
                          duration_seconds=15.0, fps=10, n_distinct_scenes=5)
        rng = np.random.default_rng(0)
        noise = rng.normal(0, 0.06, size=clip.frames.shape).astype(np.float32)
        block = 4
        noise = noise[:, ::block, ::block]
        noise = np.repeat(np.repeat(noise, block, axis=1), block, axis=2)
        degraded = np.clip(clip.frames + noise, 0, 1)

        config = SrTrainConfig(epochs=15, steps_per_epoch=12, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=6, loss="mse", seed=0)
        losses = {}
        for size in DATA_SIZES:
            # Identical initial weights for every data size (paper: "we
            # initialized a micro model with the same weight").
            model = EDSR(EdsrConfig(n_resblocks=8, n_filters=8), seed=123)
            history = train_sr(model, degraded[:size], clip.frames[:size],
                               config)
            losses[size] = history.final_loss
        return losses

    losses = run_once(benchmark, experiment)
    print_series("Figure 11: final training loss (MSE) vs data size",
                 list(DATA_SIZES), {"loss": [losses[s] for s in DATA_SIZES]})
    save_results("fig11", {str(k): v for k, v in losses.items()})

    # The paper's monotone trend: more data to memorise -> higher loss.
    values = [losses[s] for s in DATA_SIZES]
    assert values[0] < values[-1]
    assert all(a <= b * 1.15 for a, b in zip(values[:-1], values[1:]))
