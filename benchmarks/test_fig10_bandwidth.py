"""Figure 10 — normalized network usage.

Total bytes (video + models) per method, normalized against NAS.  dcSR
downloads several micro models whose combined size is bounded by one big
model (Eq. 3) and, via caching, only one copy per cluster — the paper
reports ~25 % average saving over NAS/NEMO.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import bandwidth_of, normalized_usage

METHODS = ("NAS", "NEMO", "dcSR", "LOW")


def test_fig10_network_usage(benchmark, corpus_results):
    def experiment():
        table = {}
        for exp in corpus_results:
            usages = {m: bandwidth_of(m, exp.results[m]) for m in METHODS}
            table[exp.clip.name] = normalized_usage(usages)
        return table

    table = run_once(benchmark, experiment)
    rows = [[name] + [vals[m] for m in METHODS] for name, vals in table.items()]
    means = {m: float(np.mean([vals[m] for vals in table.values()]))
             for m in METHODS}
    rows.append(["MEAN"] + [means[m] for m in METHODS])
    print_table("Figure 10: normalized network usage (vs NAS)",
                ["video"] + list(METHODS), rows)
    save_results("fig10", table)

    # NAS and NEMO ship the same big model: identical usage.
    for vals in table.values():
        assert np.isclose(vals["NAS"], 1.0)
        assert np.isclose(vals["NEMO"], 1.0)
    # dcSR saves bandwidth on every video (paper: ~25 % on average) and the
    # LOW floor (video only) is below dcSR.
    assert all(vals["dcSR"] < 1.0 for vals in table.values())
    assert means["dcSR"] <= 0.85
    assert all(vals["LOW"] < vals["dcSR"] for vals in table.values())


def test_fig10_cache_prevents_redownloads(benchmark, corpus_results):
    """Model bytes equal the distinct-cluster total, not the per-segment sum
    — the contribution of Algorithm 1."""
    def experiment():
        rows = []
        for exp in corpus_results:
            manifest = exp.package.manifest
            naive = sum(manifest.model_sizes[l]
                        for l in manifest.label_sequence())
            cached = exp.results["dcSR"].model_bytes
            rows.append((exp.clip.name, naive, cached))
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Model bytes: naive per-segment vs cached (Algorithm 1)",
                ["video", "naive B", "cached B"], rows)
    for _, naive, cached in rows:
        assert cached <= naive
    # At least one corpus video revisits scenes, so caching must save bytes.
    assert any(cached < naive for _, naive, cached in rows)
