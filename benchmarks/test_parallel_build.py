"""Parallel server build: the training-cost speedup curve and incremental
rebuilds.

Two operational claims on top of the paper's ~3x-cheaper training:

- per-cluster micro-model training (and per-segment encode/decode) is
  embarrassingly parallel, so the build speeds up with workers until the
  K training tasks are spread one-per-core;
- a content-addressed training cache makes rebuilding an unchanged video
  free of training entirely.

The speedup assertion only fires on machines with >= 4 cores (a
single-core box runs the same code without the parallel win); the cache
assertion holds everywhere.

Honesty contract: every row records the *effective* backend and worker
count the build actually ran with, not the requested ones.  On a
single-core host ``ParallelConfig`` self-calibrates pool requests to
serial, so the table can never again publish a "process x2" row whose
speedup is structurally <= 1.0x — those rows now read "serial x1" and
the saved JSON carries an ``auto_calibrated`` flag plus the measurement
conditions (``cpu_count``).
"""

import os
import time

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.core import ParallelConfig, ServerConfig, build_package
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
WORKER_COUNTS = (1, 2, 4)
K = 4


def _clip():
    return make_video("parallel-build", genre="music", seed=7, size=(48, 64),
                      duration_seconds=4.0 if FAST else 8.0, fps=10,
                      n_distinct_scenes=K)


def _config(workers: int, cache_dir: str | None = None) -> ServerConfig:
    epochs = 6 if FAST else 20
    return ServerConfig(
        codec=CodecConfig(crf=51),
        max_segment_len=10,
        vae_train=VaeTrainConfig(epochs=4 if FAST else 10, batch_size=4),
        sr_train=SrTrainConfig(epochs=epochs, steps_per_epoch=10,
                               batch_size=8, patch_size=16,
                               lr_decay_epochs=max(2, epochs // 2)),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        k_override=K,
        validate_in_loop=False,
        parallel=ParallelConfig(
            workers=workers,
            backend="serial" if workers == 1 else "process"),
        train_cache_dir=cache_dir,
    )


def test_parallel_build_speedup(benchmark):
    clip = _clip()

    def experiment():
        rows = []
        for workers in WORKER_COUNTS:
            t0 = time.perf_counter()
            package = build_package(clip, _config(workers))
            total = time.perf_counter() - t0
            ran = (f"{package.telemetry.backend} "
                   f"x{package.telemetry.workers}")
            rows.append([workers, ran, total,
                         package.telemetry.stage_seconds["train"],
                         package.telemetry.stage_seconds["encode"],
                         rows[0][2] / total if rows else 1.0])
        return rows

    rows = run_once(benchmark, experiment)
    calibrated = any(ran == "serial x1" for _, ran, *_ in rows[1:])
    print_table("Parallel build: wall-clock vs workers "
                f"(K = {K}, {os.cpu_count()} cores"
                + (", pool requests auto-calibrated to serial)"
                   if calibrated else ")"),
                ["requested", "ran", "build (s)", "train (s)",
                 "encode (s)", "speedup"], rows)
    save_results("parallel_build", {
        "cpu_count": os.cpu_count(),
        "k": K,
        "auto_calibrated": calibrated,
        "rows": [[w, ran, t, tr, en, s]
                 for w, ran, t, tr, en, s in rows],
    })

    speedup_at_max = rows[-1][-1]
    if (os.cpu_count() or 1) >= 4:
        # K >= 3 independent training tasks over 4 process workers must
        # beat the sequential build clearly.
        assert speedup_at_max >= 1.5
    else:
        # The pool requests calibrated down to serial: every row ran the
        # same code, so the only spread left is measurement noise.
        assert calibrated
        assert speedup_at_max > 0.3


def test_training_cache_incremental_rebuild(benchmark, tmp_path):
    clip = _clip()
    cache_dir = str(tmp_path / "train-cache")

    def experiment():
        t0 = time.perf_counter()
        cold = build_package(clip, _config(1, cache_dir))
        cold_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = build_package(clip, _config(1, cache_dir))
        warm_seconds = time.perf_counter() - t0
        return cold, cold_seconds, warm, warm_seconds

    cold, cold_seconds, warm, warm_seconds = run_once(benchmark, experiment)
    print_table("Training cache: cold vs warm rebuild",
                ["build", "total (s)", "train (s)", "hits", "misses"],
                [["cold", cold_seconds,
                  cold.telemetry.stage_seconds["train"],
                  cold.telemetry.cache_hits, cold.telemetry.cache_misses],
                 ["warm", warm_seconds,
                  warm.telemetry.stage_seconds["train"],
                  warm.telemetry.cache_hits, warm.telemetry.cache_misses]])
    save_results("parallel_build_cache", {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_train_seconds": cold.telemetry.stage_seconds["train"],
        "warm_train_seconds": warm.telemetry.stage_seconds["train"],
        "hits": warm.telemetry.cache_hits,
    })

    # Second build of the same clip is a full training-cache hit ...
    assert warm.telemetry.cache_hits == warm.n_models
    assert warm.telemetry.cache_misses == 0
    # ... which reduces the train stage to checkpoint loads.
    assert (warm.telemetry.stage_seconds["train"]
            < cold.telemetry.stage_seconds["train"] / 2)
