"""Figure 12 — 4K inference rate on the laptop and desktop.

On discrete-GPU machines the big models fit in memory, but NAS still falls
far short of real time; NEMO reaches 30 FPS only at few inferences per
segment; dcSR meets 30 FPS regardless of device and inference count.
"""

from benchmarks.conftest import run_once
from repro.bench import print_series, save_results
from repro.devices import get_device, playback_fps
from repro.sr import EDSR, big_model_config, dcsr_config

SEGMENT_FRAMES = 30
INFERENCE_SWEEP = (2, 4, 6, 8, 10)


def _sweep(device_name):
    device = get_device(device_name)
    big = EDSR(big_model_config("4k"))
    series = {
        "NAS": [playback_fps(big, "4k", device, SEGMENT_FRAMES, SEGMENT_FRAMES)] * len(INFERENCE_SWEEP),
        "NEMO": [playback_fps(big, "4k", device, SEGMENT_FRAMES, k)
                 for k in INFERENCE_SWEEP],
    }
    for level in (1, 2, 3):
        model = EDSR(dcsr_config(level, scale=4))
        series[f"dcSR-{level}"] = [
            playback_fps(model, "4k", device, SEGMENT_FRAMES, k)
            for k in INFERENCE_SWEEP]
    return series


class TestFig12:
    def test_fig12a_laptop(self, benchmark):
        series = run_once(benchmark, lambda: _sweep("laptop"))
        print_series("Figure 12(a): laptop FPS at 4K", list(INFERENCE_SWEEP),
                     {k: [round(v, 1) for v in vals] for k, vals in series.items()})
        save_results("fig12a", series)
        self._check(series)

    def test_fig12b_desktop(self, benchmark):
        series = run_once(benchmark, lambda: _sweep("desktop"))
        print_series("Figure 12(b): desktop FPS at 4K", list(INFERENCE_SWEEP),
                     {k: [round(v, 1) for v in vals] for k, vals in series.items()})
        save_results("fig12b", series)
        self._check(series)
        # Desktop outpaces laptop everywhere.
        laptop = _sweep("laptop")
        for method in series:
            assert all(d >= l for d, l in zip(series[method], laptop[method]))

    @staticmethod
    def _check(series):
        # dcSR meets 30 FPS regardless of configuration and inference count.
        for level in (1, 2, 3):
            assert all(v >= 30.0 for v in series[f"dcSR-{level}"])
        # NAS fails the FPS requirement even on high-end devices.
        assert all(v < 30.0 for v in series["NAS"])
        # NEMO: only "under few instances".
        assert series["NEMO"][-1] < 30.0
