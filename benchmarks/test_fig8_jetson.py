"""Figure 8(a-d) — inference rate and power on the Jetson Xavier NX.

(a)-(c): practical FPS vs the number of SR inferences per segment, for
720p / 1080p / 4K.  dcSR-1 clears 30 FPS everywhere; NAS is far below real
time; NAS and NEMO cannot run at 4K at all (out of memory).

(d): power over a playback session — NAS draws a flat elevated line (it
infers continuously), NEMO and dcSR draw periodic spikes, and dcSR's total
energy is a fraction of both.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_series, print_table, save_results
from repro.core import session_power
from repro.devices import OutOfMemory, get_device, playback_fps
from repro.sr import EDSR, RESOLUTIONS, big_model_config, dcsr_config

SEGMENT_FRAMES = 30  # one-second segments at 30 fps
INFERENCE_SWEEP = (1, 2, 3, 4, 5)


def _fps_or_oom(model, res, device, k):
    try:
        return playback_fps(model, res, device, SEGMENT_FRAMES, k)
    except OutOfMemory:
        return None


def _sweep(resolution):
    jetson = get_device("jetson")
    scale = RESOLUTIONS[resolution].sr_scale
    big = EDSR(big_model_config(resolution))
    series = {
        "NAS": [_fps_or_oom(big, resolution, jetson, SEGMENT_FRAMES)] * len(INFERENCE_SWEEP),
        "NEMO": [_fps_or_oom(big, resolution, jetson, k) for k in INFERENCE_SWEEP],
    }
    for level in (1, 2, 3):
        model = EDSR(dcsr_config(level, scale=scale))
        series[f"dcSR-{level}"] = [_fps_or_oom(model, resolution, jetson, k)
                                   for k in INFERENCE_SWEEP]
    return series


def _print_sweep(name, series):
    display = {method: [("OOM" if v is None else round(v, 1)) for v in vals]
               for method, vals in series.items()}
    print_series(name, list(INFERENCE_SWEEP), display)


class TestFig8Fps:
    def test_fig8a_720p(self, benchmark):
        series = run_once(benchmark, lambda: _sweep("720p"))
        _print_sweep("Figure 8(a): Jetson FPS at 720p", series)
        save_results("fig8a", series)
        assert all(v >= 30.0 for v in series["dcSR-1"])
        assert all(v is not None and v < 5.0 for v in series["NAS"])
        # NEMO meets 30 FPS only "under few instances".
        assert series["NEMO"][0] >= 28.0
        assert series["NEMO"][-1] < 30.0

    def test_fig8b_1080p(self, benchmark):
        series = run_once(benchmark, lambda: _sweep("1080p"))
        _print_sweep("Figure 8(b): Jetson FPS at 1080p", series)
        save_results("fig8b", series)
        assert all(v >= 30.0 for v in series["dcSR-1"])
        assert all(v is not None and v < 1.0 for v in series["NAS"])
        assert all(v < 30.0 for v in series["NEMO"])

    def test_fig8c_4k(self, benchmark):
        series = run_once(benchmark, lambda: _sweep("4k"))
        _print_sweep("Figure 8(c): Jetson FPS at 4K", series)
        save_results("fig8c", {k: v for k, v in series.items()})
        # NAS and NEMO run out of memory at 4K on the Jetson.
        assert all(v is None for v in series["NAS"])
        assert all(v is None for v in series["NEMO"])
        # dcSR-1 meets 30 FPS at one inference per segment; the heavier
        # configurations still exceed 5 FPS everywhere.
        assert series["dcSR-1"][0] >= 30.0
        for level in (1, 2, 3):
            assert all(v is not None and v >= 5.0
                       for v in series[f"dcSR-{level}"])

    def test_fps_monotone_in_inferences(self, benchmark):
        def experiment():
            return _sweep("1080p")
        series = run_once(benchmark, experiment)
        for method in ("NEMO", "dcSR-1", "dcSR-2", "dcSR-3"):
            vals = series[method]
            assert all(a >= b for a, b in zip(vals[:-1], vals[1:])), method


class TestFig8dPower:
    def test_power_timeline_and_energy(self, benchmark):
        """Fig 8(d): dcSR spikes stay low; NAS is flat and high; total
        energy — dcSR saves ~1.4x vs NEMO and ~2.9x vs NAS in the paper."""
        jetson = get_device("jetson")
        resolution = "1080p"
        session = [8.0] * 100  # 800 s of 8-second segments

        def experiment():
            dcsr = session_power(jetson, EDSR(dcsr_config(1, scale=2)),
                                 resolution, session, inferences_per_segment=1)
            nemo = session_power(jetson, EDSR(big_model_config(resolution)),
                                 resolution, session, inferences_per_segment=1)
            nas = session_power(jetson, EDSR(big_model_config(resolution)),
                                resolution, session, inferences_per_segment=1,
                                continuous=True)
            return {"dcSR": dcsr, "NEMO": nemo, "NAS": nas}

        timelines = run_once(benchmark, experiment)
        rows = [[name, t.peak_watts, t.mean_watts, t.energy_joules]
                for name, t in timelines.items()]
        print_table("Figure 8(d): power on Jetson (1080p, 800 s session)",
                    ["method", "peak W", "mean W", "energy J"], rows)
        save_results("fig8d", {
            name: {"peak_w": t.peak_watts, "mean_w": t.mean_watts,
                   "energy_j": t.energy_joules}
            for name, t in timelines.items()})

        dcsr, nemo, nas = (timelines[m] for m in ("dcSR", "NEMO", "NAS"))
        # Structure: NAS flat near its peak; dcSR/NEMO spiky.
        assert nas.mean_watts > 0.95 * nas.peak_watts
        assert dcsr.mean_watts < 0.7 * dcsr.peak_watts
        # Peaks: dcSR stays at/below ~2 W; NAS reaches ~2.8 W.
        assert dcsr.peak_watts <= 2.1
        assert nas.peak_watts >= 2.5
        # Energy savings in the paper's direction (1.4x / 2.9x).
        assert nas.energy_joules / dcsr.energy_joules > 2.0
        assert nemo.energy_joules / dcsr.energy_joules > 1.2
