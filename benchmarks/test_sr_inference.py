"""Client SR inference: reference forward vs the tiled NHWC fast path.

The paper's client-side feasibility argument rests on micro-model
inference being cheap; this benchmark quantifies the repo's inference
engine against the training framework's reference forward — FPS by frame
size, tiled vs whole-frame, and thread scaling — and enforces the ISSUE's
acceptance bar: >= 3x single-thread speedup at 360p with <= 1e-5 max abs
difference.

Accuracy is measured on a *briefly trained* model: training shrinks
weight magnitudes from their He-init extremes, which is the regime the
client actually runs (He-init models can show ~2e-5 reassociation noise;
trained ones sit orders of magnitude below the 1e-5 bar).
"""

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import load_results, print_table, save_results
from repro.sr import (
    EDSR,
    EdsrConfig,
    InferenceEngine,
    SrTrainConfig,
    train_sr,
)
from repro.video import make_video

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

SIZES = [(180, 320, "180p"), (360, 640, "360p")] if FAST else \
    [(180, 320, "180p"), (270, 480, "270p"), (360, 640, "360p"),
     (540, 960, "540p")]
THREADS = (1, 2, 4)
TILE = 96


def _trained_model():
    """A dcSR-sized micro model briefly trained on synthetic content."""
    clip = make_video("inference-bench", genre="music", seed=5,
                      size=(48, 64), duration_seconds=2.0, fps=10,
                      n_distinct_scenes=1)
    model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
    train_sr(model, clip.frames, clip.frames,
             SrTrainConfig(epochs=2 if FAST else 4, steps_per_epoch=10,
                           batch_size=8, patch_size=16, lr_decay_epochs=2))
    return model


def _fps(fn, frame, repeats):
    best = min(_timed(fn, frame) for _ in range(repeats))
    return 1.0 / max(best, 1e-9)


def _timed(fn, frame):
    t0 = time.perf_counter()
    fn(frame)
    return time.perf_counter() - t0


def test_sr_inference_fast_path(benchmark):
    model = _trained_model()
    repeats = 2 if FAST else 3

    def experiment():
        rows = []
        accuracy = {}
        for h, w, label in SIZES:
            frame = np.random.default_rng(h).random((h, w, 3),
                                                    dtype=np.float32)
            ref = model.enhance(frame)
            ref_fps = _fps(model.enhance, frame, repeats)
            whole = InferenceEngine(model)
            whole_out = whole.enhance(frame)
            whole_fps = _fps(whole.enhance, frame, repeats)
            accuracy[label] = float(np.abs(whole_out - ref).max())
            row = [label, ref_fps, whole_fps]
            for threads in THREADS:
                engine = InferenceEngine(model, tile=TILE, threads=threads)
                tiled_out = engine.enhance(frame)
                assert np.abs(tiled_out - whole_out).max() <= 1e-5
                row.append(_fps(engine.enhance, frame, repeats))
            row.append(whole_fps / ref_fps)
            rows.append(row)
        return rows, accuracy

    rows, accuracy = run_once(benchmark, experiment)

    headers = ["size", "ref FPS", "fast FPS"] + \
        [f"tiled x{t}" for t in THREADS] + ["speedup"]
    print_table("SR inference: reference vs fast path "
                f"(tile={TILE}px)", headers, rows)

    by_size = {row[0]: {"ref_fps": row[1], "fast_fps": row[2],
                        "tiled_fps": dict(zip(map(str, THREADS),
                                              row[3:3 + len(THREADS)])),
                        "speedup": row[-1],
                        "max_abs_diff": accuracy[row[0]]}
               for row in rows}
    save_results("sr_inference", {
        "model": model.config.label,
        "tile": TILE,
        "threads": list(THREADS),
        "by_size": by_size,
    })

    # The ISSUE's acceptance bar, at 360p single-thread whole-frame.
    p360 = by_size["360p"]
    assert p360["speedup"] >= 3.0, p360
    assert p360["max_abs_diff"] <= 1e-5, p360
    # Fast path must win everywhere, not just at the acceptance point.
    for label, entry in by_size.items():
        assert entry["fast_fps"] >= entry["ref_fps"], (label, entry)


GATE_TILE = 128
GATE_THRESHOLD = 1e-3


def test_sr_quantized_gated_fast_path(benchmark):
    """PR-7 fast-path knobs on *realistic* content at 360p-class frames.

    The legacy table above times noise frames, where the variance gate
    can never fire.  This section measures what a client actually plays:
    synthetic music-genre content at (352, 640) — the nearest
    multiple-of-16 frame to 360p — with the low-quality input produced
    by a bicubic down/up round trip, the degradation the micro models
    are trained to invert.

    Quantization on a pure-numpy BLAS substrate is speed-neutral (int8
    runs through the same fp32 GEMMs; its win is the ~4x model-download
    shrink).  The measured speedup comes from the variance skip gate and
    multi-frame batching, so the acceptance assertion (>= 1.5x over the
    fp32 whole-frame fast path) is pinned to the gated int8 row.
    """
    from repro.sr import SkipGateConfig
    from repro.video.quality import psnr
    from repro.video.sampling import downscale, upscale

    model = _trained_model()
    repeats = 2 if FAST else 3
    clip = make_video("quant-bench", genre="music", seed=7,
                      size=(352, 640), duration_seconds=0.4, fps=10,
                      n_distinct_scenes=1)
    hr = np.stack(clip.frames[:4])
    lq = np.stack([upscale(downscale(f, 2), 2) for f in hr])
    frame, pristine = lq[0], hr[0]
    gate = SkipGateConfig(GATE_THRESHOLD)

    def experiment():
        plain = InferenceEngine(model)
        base_out = plain.enhance(frame)
        base_fps = _fps(plain.enhance, frame, repeats)
        base_psnr = psnr(base_out, pristine)

        rows, quality = [], {}
        rows.append(["fp32 whole", base_fps, 1.0])
        for precision in ("fp16", "int8"):
            engine = InferenceEngine(model, precision=precision)
            out = engine.enhance(frame)
            quality[precision] = {
                "psnr": float(psnr(out, pristine)),
                "delta_db": float(psnr(out, pristine) - base_psnr),
            }
            fps = _fps(engine.enhance, frame, repeats)
            rows.append([f"{precision} whole", fps, fps / base_fps])

        gated32 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate)
        gated32.enhance(frame)
        skip_ratio = gated32.stats.skipped_tiles / max(
            gated32.stats.skipped_tiles + gated32.stats.tile_count, 1)
        fps = _fps(gated32.enhance, frame, repeats)
        rows.append(["fp32 gated t128", fps, fps / base_fps])

        gated8 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                                 precision="int8")
        gated8_out = gated8.enhance(frame)
        quality["int8_gated"] = {
            "psnr": float(psnr(gated8_out, pristine)),
            "delta_db": float(psnr(gated8_out, pristine) - base_psnr),
        }
        fps = _fps(gated8.enhance, frame, repeats)
        rows.append(["int8 gated t128", fps, fps / base_fps])

        batch_engine = InferenceEngine(model, tile=GATE_TILE,
                                       skip_gate=gate, precision="int8")
        batch_s = min(_timed(batch_engine.enhance_batch, lq)
                      for _ in range(repeats))
        fps = len(lq) / max(batch_s, 1e-9)
        rows.append(["int8 gated batch-4", fps, fps / base_fps])

        # Both knobs off is the plain fast path, bit for bit.
        off = InferenceEngine(model, precision="fp32", skip_gate=None)
        bitwise_off = bool(np.array_equal(off.enhance(frame), base_out))
        return rows, quality, skip_ratio, bitwise_off

    rows, quality, skip_ratio, bitwise_off = run_once(benchmark, experiment)

    print_table("SR inference: quantized / gated fast path "
                f"(352x640 music content, gate var>={GATE_THRESHOLD})",
                ["variant", "FPS", "speedup vs fp32 whole"], rows)

    results = dict(load_results("sr_inference") or {})
    results["quantized_gated"] = {
        "frame_size": [352, 640],
        "content": "music (bicubic down/up x2 degradation)",
        "gate": {"tile": GATE_TILE, "var_threshold": GATE_THRESHOLD,
                 "skip_ratio": float(skip_ratio)},
        "rows": [{"variant": r[0], "fps": r[1], "speedup": r[2]}
                 for r in rows],
        "quality": quality,
        "bitwise_identical_when_off": bitwise_off,
    }
    save_results("sr_inference", results)

    assert bitwise_off, "precision='fp32' + no gate must be a no-op"
    # Quantization noise is budgeted both ways; the gate intentionally
    # substitutes bicubic on flat tiles (which can *gain* PSNR when the
    # model underperforms there), so it is only bounded against loss.
    for precision in ("fp16", "int8"):
        assert abs(quality[precision]["delta_db"]) <= 0.3, quality
    assert quality["int8_gated"]["delta_db"] >= -0.3, quality
    by_variant = {r[0]: r[2] for r in rows}
    assert by_variant["int8 gated t128"] >= 1.5, by_variant
    assert skip_ratio > 0.2, skip_ratio
