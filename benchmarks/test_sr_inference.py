"""Client SR inference: reference forward vs the tiled NHWC fast path.

The paper's client-side feasibility argument rests on micro-model
inference being cheap; this benchmark quantifies the repo's inference
engine against the training framework's reference forward — FPS by frame
size, tiled vs whole-frame, and thread scaling — and enforces the ISSUE's
acceptance bar: >= 3x single-thread speedup at 360p with <= 1e-5 max abs
difference.

Accuracy is measured on a *briefly trained* model: training shrinks
weight magnitudes from their He-init extremes, which is the regime the
client actually runs (He-init models can show ~2e-5 reassociation noise;
trained ones sit orders of magnitude below the 1e-5 bar).
"""

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import load_results, print_table, save_results
from repro.sr import (
    EDSR,
    EdsrConfig,
    InferenceEngine,
    SrTrainConfig,
    train_sr,
)
from repro.video import make_video

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

SIZES = [(180, 320, "180p"), (360, 640, "360p")] if FAST else \
    [(180, 320, "180p"), (270, 480, "270p"), (360, 640, "360p"),
     (540, 960, "540p")]
THREADS = (1, 2, 4)
TILE = 96


def _trained_model():
    """A dcSR-sized micro model briefly trained on synthetic content."""
    clip = make_video("inference-bench", genre="music", seed=5,
                      size=(48, 64), duration_seconds=2.0, fps=10,
                      n_distinct_scenes=1)
    model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
    train_sr(model, clip.frames, clip.frames,
             SrTrainConfig(epochs=2 if FAST else 4, steps_per_epoch=10,
                           batch_size=8, patch_size=16, lr_decay_epochs=2))
    return model


def _fps(fn, frame, repeats):
    best = min(_timed(fn, frame) for _ in range(repeats))
    return 1.0 / max(best, 1e-9)


def _timed(fn, frame):
    t0 = time.perf_counter()
    fn(frame)
    return time.perf_counter() - t0


def test_sr_inference_fast_path(benchmark):
    model = _trained_model()
    repeats = 2 if FAST else 3

    def experiment():
        rows = []
        accuracy = {}
        for h, w, label in SIZES:
            frame = np.random.default_rng(h).random((h, w, 3),
                                                    dtype=np.float32)
            ref = model.enhance(frame)
            ref_fps = _fps(model.enhance, frame, repeats)
            whole = InferenceEngine(model)
            whole_out = whole.enhance(frame)
            whole_fps = _fps(whole.enhance, frame, repeats)
            accuracy[label] = float(np.abs(whole_out - ref).max())
            row = [label, ref_fps, whole_fps]
            for threads in THREADS:
                engine = InferenceEngine(model, tile=TILE, threads=threads)
                tiled_out = engine.enhance(frame)
                assert np.abs(tiled_out - whole_out).max() <= 1e-5
                row.append(_fps(engine.enhance, frame, repeats))
            row.append(whole_fps / ref_fps)
            rows.append(row)
        return rows, accuracy

    rows, accuracy = run_once(benchmark, experiment)

    headers = ["size", "ref FPS", "fast FPS"] + \
        [f"tiled x{t}" for t in THREADS] + ["speedup"]
    print_table("SR inference: reference vs fast path "
                f"(tile={TILE}px)", headers, rows)

    by_size = {row[0]: {"ref_fps": row[1], "fast_fps": row[2],
                        "tiled_fps": dict(zip(map(str, THREADS),
                                              row[3:3 + len(THREADS)])),
                        "speedup": row[-1],
                        "max_abs_diff": accuracy[row[0]]}
               for row in rows}
    save_results("sr_inference", {
        "model": model.config.label,
        "tile": TILE,
        "threads": list(THREADS),
        "by_size": by_size,
    })

    # The ISSUE's acceptance bar, at 360p single-thread whole-frame.
    p360 = by_size["360p"]
    assert p360["speedup"] >= 3.0, p360
    assert p360["max_abs_diff"] <= 1e-5, p360
    # Fast path must win everywhere, not just at the acceptance point.
    for label, entry in by_size.items():
        assert entry["fast_fps"] >= entry["ref_fps"], (label, entry)


GATE_TILE = 128
GATE_THRESHOLD = 1e-3


def test_sr_quantized_gated_fast_path(benchmark):
    """PR-7 fast-path knobs on *realistic* content at 360p-class frames.

    The legacy table above times noise frames, where the variance gate
    can never fire.  This section measures what a client actually plays:
    synthetic music-genre content at (352, 640) — the nearest
    multiple-of-16 frame to 360p — with the low-quality input produced
    by a bicubic down/up round trip, the degradation the micro models
    are trained to invert.

    Quantization on a pure-numpy BLAS substrate is speed-neutral (int8
    runs through the same fp32 GEMMs; its win is the ~4x model-download
    shrink).  The measured speedup comes from the variance skip gate and
    multi-frame batching, so the acceptance assertion (>= 1.5x over the
    fp32 whole-frame fast path) is pinned to the gated int8 row.
    """
    from repro.sr import SkipGateConfig
    from repro.video.quality import psnr
    from repro.video.sampling import downscale, upscale

    model = _trained_model()
    repeats = 2 if FAST else 3
    clip = make_video("quant-bench", genre="music", seed=7,
                      size=(352, 640), duration_seconds=0.4, fps=10,
                      n_distinct_scenes=1)
    hr = np.stack(clip.frames[:4])
    lq = np.stack([upscale(downscale(f, 2), 2) for f in hr])
    frame, pristine = lq[0], hr[0]
    gate = SkipGateConfig(GATE_THRESHOLD)

    def experiment():
        plain = InferenceEngine(model)
        base_out = plain.enhance(frame)
        base_fps = _fps(plain.enhance, frame, repeats)
        base_psnr = psnr(base_out, pristine)

        rows, quality = [], {}
        rows.append(["fp32 whole", base_fps, 1.0])
        for precision in ("fp16", "int8"):
            engine = InferenceEngine(model, precision=precision)
            out = engine.enhance(frame)
            quality[precision] = {
                "psnr": float(psnr(out, pristine)),
                "delta_db": float(psnr(out, pristine) - base_psnr),
            }
            fps = _fps(engine.enhance, frame, repeats)
            rows.append([f"{precision} whole", fps, fps / base_fps])

        gated32 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate)
        gated32.enhance(frame)
        skip_ratio = gated32.stats.skipped_tiles / max(
            gated32.stats.skipped_tiles + gated32.stats.tile_count, 1)
        fps = _fps(gated32.enhance, frame, repeats)
        rows.append(["fp32 gated t128", fps, fps / base_fps])

        gated8 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                                 precision="int8")
        gated8_out = gated8.enhance(frame)
        quality["int8_gated"] = {
            "psnr": float(psnr(gated8_out, pristine)),
            "delta_db": float(psnr(gated8_out, pristine) - base_psnr),
        }
        fps = _fps(gated8.enhance, frame, repeats)
        rows.append(["int8 gated t128", fps, fps / base_fps])

        batch_engine = InferenceEngine(model, tile=GATE_TILE,
                                       skip_gate=gate, precision="int8")
        batch_s = min(_timed(batch_engine.enhance_batch, lq)
                      for _ in range(repeats))
        fps = len(lq) / max(batch_s, 1e-9)
        rows.append(["int8 gated batch-4", fps, fps / base_fps])

        # Both knobs off is the plain fast path, bit for bit.
        off = InferenceEngine(model, precision="fp32", skip_gate=None)
        bitwise_off = bool(np.array_equal(off.enhance(frame), base_out))
        return rows, quality, skip_ratio, bitwise_off

    rows, quality, skip_ratio, bitwise_off = run_once(benchmark, experiment)

    print_table("SR inference: quantized / gated fast path "
                f"(352x640 music content, gate var>={GATE_THRESHOLD})",
                ["variant", "FPS", "speedup vs fp32 whole"], rows)

    results = dict(load_results("sr_inference") or {})
    results["quantized_gated"] = {
        "frame_size": [352, 640],
        "content": "music (bicubic down/up x2 degradation)",
        "gate": {"tile": GATE_TILE, "var_threshold": GATE_THRESHOLD,
                 "skip_ratio": float(skip_ratio)},
        "rows": [{"variant": r[0], "fps": r[1], "speedup": r[2]}
                 for r in rows],
        "quality": quality,
        "bitwise_identical_when_off": bitwise_off,
    }
    save_results("sr_inference", results)

    assert bitwise_off, "precision='fp32' + no gate must be a no-op"
    # Quantization noise is budgeted both ways; the gate intentionally
    # substitutes bicubic on flat tiles (which can *gain* PSNR when the
    # model underperforms there), so it is only bounded against loss.
    for precision in ("fp16", "int8"):
        assert abs(quality[precision]["delta_db"]) <= 0.3, quality
    assert quality["int8_gated"]["delta_db"] >= -0.3, quality
    by_variant = {r[0]: r[2] for r in rows}
    assert by_variant["int8 gated t128"] >= 1.5, by_variant
    assert skip_ratio > 0.2, skip_ratio


REUSE_FRAMES = 16
PATCH = 48          # moving-patch edge: touches ~2 of the 15 gate tiles


def _static_background_sequence():
    """The paper's real-time target content: a 352x640 session whose
    background is static frame to frame while a small patch moves.

    The low-quality inputs come from the same bicubic down/up x2 round
    trip as the quantized benchmark; because the degradation is
    deterministic and local, static background pixels are *bitwise*
    static in the LQ sequence too — exactly what exact-mode reuse keys
    on in a real decode loop.
    """
    from repro.video.sampling import downscale, upscale

    clip = make_video("reuse-bench", genre="music", seed=9,
                      size=(352, 640), duration_seconds=0.2, fps=10,
                      n_distinct_scenes=1)
    base = np.stack(clip.frames[:1])[0]
    rng = np.random.default_rng(10)
    patch = rng.random((PATCH, PATCH, 3), dtype=np.float32)
    hr = []
    for i in range(REUSE_FRAMES):
        frame = base.copy()
        y, x = 64, 64 + i * 24                     # drifts right each frame
        frame[y:y + PATCH, x:x + PATCH] = patch
        hr.append(frame)
    hr = np.stack(hr)
    lq = np.stack([upscale(downscale(f, 2), 2) for f in hr])
    return lq, hr


def _sequence_fps(engine, frames, repeats):
    """FPS over a session-shaped pass: sequential frames, cache reset
    between passes so every repeat pays the first frame's full compute."""
    def one_pass():
        if getattr(engine, "reuse_cache", None) is not None:
            engine.reset_reuse()
        t0 = time.perf_counter()
        for frame in frames:
            engine.enhance(frame)
        return time.perf_counter() - t0

    best = min(one_pass() for _ in range(repeats))
    return len(frames) / max(best, 1e-9)


def test_sr_temporal_reuse_fast_path(benchmark):
    """The ISSUE's real-time ladder on static-background content:
    fp32 whole -> int8 gated -> + exact temporal reuse -> + blocked GEMM,
    with the acceptance bar (>= 30 FPS single-thread) pinned to the
    reuse rows."""
    from repro.sr import SkipGateConfig
    from repro.video.quality import psnr

    model = _trained_model()
    repeats = 2 if FAST else 3
    lq, hr = _static_background_sequence()
    gate = SkipGateConfig(GATE_THRESHOLD)

    def experiment():
        plain = InferenceEngine(model)
        base_fps = _sequence_fps(plain, lq, repeats)
        rows = [["fp32 whole", base_fps, 1.0]]

        gated8 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                                 precision="int8")
        exact_out = np.stack([gated8.enhance(f) for f in lq])
        psnr_exact = float(psnr(exact_out, hr))
        fps = _sequence_fps(gated8, lq, repeats)
        rows.append(["int8 gated t128", fps, fps / base_fps])

        reuse8 = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                                 precision="int8", reuse=True)
        reuse_out, reused, total = [], 0, 0
        for frame in lq:
            reuse_out.append(reuse8.enhance(frame))
            s = reuse8.stats
            reused += s.reused_tiles
            total += s.tile_count + s.skipped_tiles + s.reused_tiles
        reuse_out = np.stack(reuse_out)
        reuse_rate = reused / max(total, 1)
        psnr_reuse = float(psnr(reuse_out, hr))
        bitwise_reuse = bool(np.array_equal(reuse_out, exact_out))
        fps = _sequence_fps(reuse8, lq, repeats)
        rows.append(["int8 gated+reuse", fps, fps / base_fps])

        blocked = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                                  precision="int8", reuse=True,
                                  kernel="blocked")
        fps = _sequence_fps(blocked, lq, repeats)
        rows.append(["int8 gated+reuse+blocked", fps, fps / base_fps])

        # Reuse off reproduces the PR-7 engine bit for bit.
        off = InferenceEngine(model, tile=GATE_TILE, skip_gate=gate,
                              precision="int8", reuse=None)
        off_out = np.stack([off.enhance(f) for f in lq])
        bitwise_off = bool(np.array_equal(off_out, exact_out))
        return (rows, reuse_rate, psnr_exact, psnr_reuse, bitwise_reuse,
                bitwise_off)

    (rows, reuse_rate, psnr_exact, psnr_reuse, bitwise_reuse,
     bitwise_off) = run_once(benchmark, experiment)

    print_table("SR inference: temporal reuse ladder "
                f"(352x640 static background, {REUSE_FRAMES} frames)",
                ["variant", "seq FPS", "speedup vs fp32 whole"], rows)

    results = dict(load_results("sr_inference") or {})
    results["temporal_reuse"] = {
        "frame_size": [352, 640],
        "frames": REUSE_FRAMES,
        "content": "music, static background + moving "
                   f"{PATCH}x{PATCH} patch (bicubic down/up x2)",
        "reuse": {"mode": "exact", "rate": float(reuse_rate)},
        "quality": {"psnr_exact": psnr_exact, "psnr_reuse": psnr_reuse,
                    "delta_db": psnr_exact - psnr_reuse},
        "rows": [{"variant": r[0], "fps": r[1], "speedup": r[2]}
                 for r in rows],
        "bitwise_identical_to_no_reuse": bitwise_reuse,
        "bitwise_identical_when_off": bitwise_off,
    }
    save_results("sr_inference", results)

    assert bitwise_off, "reuse=None must reproduce the PR-7 engine"
    assert bitwise_reuse, "exact-mode reuse must be invisible in the bits"
    assert abs(psnr_exact - psnr_reuse) <= 0.3
    assert reuse_rate >= 0.5, reuse_rate
    by_variant = {r[0]: r[1] for r in rows}
    # The paper's real-time claim, on this substrate, single-thread.
    assert by_variant["int8 gated+reuse"] >= 30.0, by_variant
    # The blocked GEMM trades the shift kernel's zero-copy taps for an
    # im2col materialization; on BLAS-backed numpy that loses at micro
    # shapes, so it is recorded honestly and only held above baseline.
    assert by_variant["int8 gated+reuse+blocked"] > by_variant["fp32 whole"]


def test_blocked_gemm_block_size_sweep(benchmark):
    """Cache-blocked im2col across block sizes on a 352x640 activation.

    fp32 is held to reassociation tolerance against the unblocked run
    (BLAS sgemm picks kernels by M, so bitwise equality across block
    sizes is unguaranteeable); int8 is asserted bitwise at every size
    (integer accumulation below 2^24 is order-independent).  The sweep
    records where the scratch-budget-derived default lands."""
    from repro.nn import functional as F

    rng = np.random.default_rng(11)
    h, w, cin, cout, k = 352, 640, 8, 8, 3
    x = rng.standard_normal((1, h, w, cin)).astype(np.float32)
    weight = (rng.standard_normal((cout, cin, k, k)) * 0.3).astype(np.float32)
    bias = rng.standard_normal(cout).astype(np.float32)
    packed = F.pack_conv_weight(weight, bias)
    qw = F.quantize_conv_weight(weight, bias, "int8")
    repeats = 2 if FAST else 3
    flops = 2.0 * h * w * cin * cout * k * k
    default_rows = F.im2col_block_rows(w, cin, k, k)

    def experiment():
        reference = F.conv2d_im2col_nhwc(x, packed, block_rows=0)
        ref_int8 = F.conv2d_im2col_nhwc_quant(x, qw, block_rows=0)
        rows = []
        for block_rows in (1, 4, default_rows, 64, 128, 0):
            label = ("unblocked" if block_rows == 0 else
                     f"{block_rows} rows" + (" (budget)" if block_rows ==
                                             default_rows else ""))
            out = F.conv2d_im2col_nhwc(x, packed, block_rows=block_rows)
            fp32_max_diff = float(np.abs(out - reference).max())
            assert fp32_max_diff <= 1e-5, (block_rows, fp32_max_diff)
            out_int8 = F.conv2d_im2col_nhwc_quant(x, qw,
                                                  block_rows=block_rows)
            assert np.array_equal(out_int8, ref_int8), block_rows
            best = min(_timed(lambda f: F.conv2d_im2col_nhwc(
                x, packed, block_rows=block_rows), None)
                for _ in range(repeats))
            rows.append([label, block_rows, flops / best / 1e9,
                         fp32_max_diff])
        return rows

    rows = run_once(benchmark, experiment)

    print_table("Blocked im2col GEMM: block-size sweep "
                f"(352x640x{cin} -> {cout}, 3x3, "
                f"budget {F.IM2COL_SCRATCH_BYTES // 1024} KiB)",
                ["block", "rows", "GFLOP/s", "fp32 max|diff|"], rows)

    results = dict(load_results("sr_inference") or {})
    results["blocked_gemm"] = {
        "shape": {"h": h, "w": w, "cin": cin, "cout": cout, "k": k},
        "scratch_bytes": F.IM2COL_SCRATCH_BYTES,
        "budget_block_rows": default_rows,
        "sweep": [{"label": r[0], "block_rows": r[1], "gflops": r[2],
                   "fp32_max_diff_vs_unblocked": r[3]}
                  for r in rows],
        "int8_bitwise_equal_to_unblocked": True,
        "fp32_tolerance_vs_unblocked": 1e-5,
    }
    save_results("sr_inference", results)
