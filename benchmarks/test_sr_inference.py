"""Client SR inference: reference forward vs the tiled NHWC fast path.

The paper's client-side feasibility argument rests on micro-model
inference being cheap; this benchmark quantifies the repo's inference
engine against the training framework's reference forward — FPS by frame
size, tiled vs whole-frame, and thread scaling — and enforces the ISSUE's
acceptance bar: >= 3x single-thread speedup at 360p with <= 1e-5 max abs
difference.

Accuracy is measured on a *briefly trained* model: training shrinks
weight magnitudes from their He-init extremes, which is the regime the
client actually runs (He-init models can show ~2e-5 reassociation noise;
trained ones sit orders of magnitude below the 1e-5 bar).
"""

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import print_table, save_results
from repro.sr import (
    EDSR,
    EdsrConfig,
    InferenceEngine,
    SrTrainConfig,
    train_sr,
)
from repro.video import make_video

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

SIZES = [(180, 320, "180p"), (360, 640, "360p")] if FAST else \
    [(180, 320, "180p"), (270, 480, "270p"), (360, 640, "360p"),
     (540, 960, "540p")]
THREADS = (1, 2, 4)
TILE = 96


def _trained_model():
    """A dcSR-sized micro model briefly trained on synthetic content."""
    clip = make_video("inference-bench", genre="music", seed=5,
                      size=(48, 64), duration_seconds=2.0, fps=10,
                      n_distinct_scenes=1)
    model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=0)
    train_sr(model, clip.frames, clip.frames,
             SrTrainConfig(epochs=2 if FAST else 4, steps_per_epoch=10,
                           batch_size=8, patch_size=16, lr_decay_epochs=2))
    return model


def _fps(fn, frame, repeats):
    best = min(_timed(fn, frame) for _ in range(repeats))
    return 1.0 / max(best, 1e-9)


def _timed(fn, frame):
    t0 = time.perf_counter()
    fn(frame)
    return time.perf_counter() - t0


def test_sr_inference_fast_path(benchmark):
    model = _trained_model()
    repeats = 2 if FAST else 3

    def experiment():
        rows = []
        accuracy = {}
        for h, w, label in SIZES:
            frame = np.random.default_rng(h).random((h, w, 3),
                                                    dtype=np.float32)
            ref = model.enhance(frame)
            ref_fps = _fps(model.enhance, frame, repeats)
            whole = InferenceEngine(model)
            whole_out = whole.enhance(frame)
            whole_fps = _fps(whole.enhance, frame, repeats)
            accuracy[label] = float(np.abs(whole_out - ref).max())
            row = [label, ref_fps, whole_fps]
            for threads in THREADS:
                engine = InferenceEngine(model, tile=TILE, threads=threads)
                tiled_out = engine.enhance(frame)
                assert np.abs(tiled_out - whole_out).max() <= 1e-5
                row.append(_fps(engine.enhance, frame, repeats))
            row.append(whole_fps / ref_fps)
            rows.append(row)
        return rows, accuracy

    rows, accuracy = run_once(benchmark, experiment)

    headers = ["size", "ref FPS", "fast FPS"] + \
        [f"tiled x{t}" for t in THREADS] + ["speedup"]
    print_table("SR inference: reference vs fast path "
                f"(tile={TILE}px)", headers, rows)

    by_size = {row[0]: {"ref_fps": row[1], "fast_fps": row[2],
                        "tiled_fps": dict(zip(map(str, THREADS),
                                              row[3:3 + len(THREADS)])),
                        "speedup": row[-1],
                        "max_abs_diff": accuracy[row[0]]}
               for row in rows}
    save_results("sr_inference", {
        "model": model.config.label,
        "tile": TILE,
        "threads": list(THREADS),
        "by_size": by_size,
    })

    # The ISSUE's acceptance bar, at 360p single-thread whole-frame.
    p360 = by_size["360p"]
    assert p360["speedup"] >= 3.0, p360
    assert p360["max_abs_diff"] <= 1e-5, p360
    # Fast path must win everywhere, not just at the acceptance point.
    for label, entry in by_size.items():
        assert entry["fast_fps"] >= entry["ref_fps"], (label, entry)
